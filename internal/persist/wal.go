package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// WAL on-disk format. A stream is a sequence of segment files named
// w<stream>-<seq>.wal; seq is allocated from one pipeline-global counter
// so segments across all streams (and across restarts) sort into a
// single timeline. Each segment is:
//
//	header:  magic "CPWAL002" (8) | stream (4 LE) | seq (8 LE)
//	frames:  length (4 LE) | crc32c(payload) (4 LE) | payload
//	payload: op (1) | key (8 LE) | expireAt ns (8 LE) | version (8 LE) | value bytes
//
// Frames are written strictly append-only and a restart always rolls to
// a fresh segment, so a frame that fails its length or CRC check marks
// the end of that segment's valid prefix (a torn final write), never a
// gap with valid data after it. ops: 1 = set, 2 = delete. CPWAL002 added
// the per-record CAS version; CPWAL001 segments are not readable.
const (
	walMagic  = "CPWAL002"
	walSuffix = ".wal"

	segHeaderLen   = 8 + 4 + 8
	frameHeaderLen = 4 + 4

	opSet    = byte(1)
	opDelete = byte(2)

	// maxRecordLen rejects absurd frame lengths during replay before
	// allocating (a corrupt length field must not OOM recovery).
	maxRecordLen = 64 << 20
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walName formats a segment file name.
func walName(stream int, seq uint64) string {
	return fmt.Sprintf("w%03d-%016x%s", stream, seq, walSuffix)
}

// stream is one WAL stream: a persister goroutine draining the change
// rings of its assigned partitions into segment files.
type stream struct {
	p  *Pipeline
	id int

	apps atomic.Pointer[[]*Appender]

	// persister-owned segment state
	f      *os.File
	bw     *bufio.Writer
	crcBuf [frameHeaderLen]byte

	// observable from other goroutines
	seq     atomic.Uint64
	path    atomicString
	written atomic.Int64 // bytes handed to bw for the current segment
	synced  atomic.Int64 // bytes known fsynced in the current segment

	wake    chan struct{}
	parked  atomic.Bool
	syncReq atomic.Bool
	rollReq chan chan rollAck
}

// rollAck reports the seq of the fresh segment a roll opened.
type rollAck struct {
	newSeq uint64
	err    error
}

// atomicString is a tiny atomic string cell (for the segment path).
type atomicString struct{ v atomic.Pointer[string] }

func (s *atomicString) Store(v string) { s.v.Store(&v) }
func (s *atomicString) Load() string {
	if p := s.v.Load(); p != nil {
		return *p
	}
	return ""
}

func newStream(p *Pipeline, id int) *stream {
	s := &stream{
		p:       p,
		id:      id,
		wake:    make(chan struct{}, 1),
		rollReq: make(chan chan rollAck),
	}
	empty := []*Appender{}
	s.apps.Store(&empty)
	return s
}

func (s *stream) addAppender(a *Appender) {
	old := *s.apps.Load()
	next := make([]*Appender, len(old)+1)
	copy(next, old)
	next[len(old)] = a
	s.apps.Store(&next)
}

// kick wakes the persister if it is parked; called by producers after
// publishing (same store-then-check protocol as core.Table.kick).
func (s *stream) kick() {
	if s.parked.Load() {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// kickAlways queues a wake token unconditionally (commands, shutdown).
func (s *stream) kickAlways() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// openSegment seals the current segment (if any) and opens the next one.
func (s *stream) openSegment() error {
	if s.f != nil {
		if err := s.seal(); err != nil {
			return err
		}
	}
	seq := s.p.nextSeq.Add(1) - 1
	path := filepath.Join(s.p.cfg.Dir, walName(s.id, seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	// Persist the dirent too: without this, a power failure after a
	// group-committed batch in a freshly rolled segment could lose the
	// whole segment (file data fsynced, directory entry not), silently
	// dropping acked writes. Once per roll, so the cost is noise.
	syncDir(s.p.cfg.Dir)
	var hdr [segHeaderLen]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(s.id))
	binary.LittleEndian.PutUint64(hdr[12:20], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if s.bw == nil {
		s.bw = bufio.NewWriterSize(f, 256<<10)
	} else {
		s.bw.Reset(f)
	}
	s.f = f
	s.seq.Store(seq)
	s.path.Store(path)
	s.written.Store(segHeaderLen)
	s.synced.Store(segHeaderLen)
	return nil
}

// seal flushes, fsyncs and closes the current segment, advancing every
// durable watermark (a sealed segment is fully durable).
func (s *stream) seal() error {
	if err := s.syncNow(); err != nil {
		return err
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// writeRecord frames one staged payload into the segment writer,
// returning the framed length (stats are batched by drain).
func (s *stream) writeRecord(payload []byte) (int, error) {
	binary.LittleEndian.PutUint32(s.crcBuf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(s.crcBuf[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := s.bw.Write(s.crcBuf[:]); err != nil {
		return 0, err
	}
	if _, err := s.bw.Write(payload); err != nil {
		return 0, err
	}
	return frameHeaderLen + len(payload), nil
}

// drain consumes every staged record from the stream's appenders and
// writes it to the segment, rolling to a fresh segment whenever the
// current one reaches the configured size (the bound holds even when a
// deep ring drains in one sweep). It returns how many records were
// written; the per-record counters are batched into the shared stats
// once per sweep.
func (s *stream) drain() (int, error) {
	n := 0
	bytes := 0
	max := int64(s.p.cfg.MaxSegment)
	// The tail sink is loaded once per sweep: a sink attached mid-sweep
	// may miss this sweep's remaining records, but they land in a segment
	// sealed before any post-attach RollAll barrier, which is exactly the
	// guarantee SetTailSink documents.
	var sink TailSink
	if tsp := s.p.tailSink.Load(); tsp != nil {
		sink = *tsp
	}
	flush := func() {
		if n > 0 {
			s.p.records.Add(int64(n))
			s.p.recordBytes.Add(int64(bytes - n*frameHeaderLen))
		}
	}
	for _, a := range *s.apps.Load() {
		for {
			b, ok := a.pub.Consume()
			if !ok {
				break
			}
			w, err := s.writeRecord(b)
			if err == nil && sink != nil {
				sink.TailRecord(b)
			}
			a.recycle(b)
			if err != nil {
				flush()
				return n, fmt.Errorf("persist: wal write: %w", err)
			}
			a.wseq++
			n++
			bytes += w
			if s.written.Add(int64(w)) >= max {
				s.p.rolls.Add(1)
				if err := s.openSegment(); err != nil {
					flush()
					return n, err
				}
			}
		}
	}
	flush()
	return n, nil
}

// syncNow flushes the segment writer and fsyncs the file, then advances
// the durable watermarks and wakes Barrier waiters.
func (s *stream) syncNow() error {
	target := s.written.Load()
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("persist: wal flush: %w", err)
	}
	if s.synced.Load() == target {
		// Nothing new since the last sync — but the watermarks must
		// still be published and waiters woken. A Barrier arms its sync
		// request for records published mid-sweep, after the sweep has
		// already passed their appender; if that request is consumed by
		// a sync that finds an empty fresh segment (written == synced
		// right after a roll), returning silently would leave the
		// Barrier parked in cond.Wait with no broadcast ever coming —
		// it re-arms on every wakeup, and this is that wakeup.
		s.markDurable()
		return nil
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("persist: wal fsync: %w", err)
	}
	s.p.fsyncHist.Record(time.Since(start).Nanoseconds())
	s.p.fsyncs.Add(1)
	s.synced.Store(target)
	s.markDurable()
	return nil
}

// markDurable publishes each appender's written-record count as its
// durable watermark and wakes Barrier waiters.
func (s *stream) markDurable() {
	for _, a := range *s.apps.Load() {
		if a.durable.Load() != a.wseq {
			a.durable.Store(a.wseq)
		}
	}
	s.p.mu.Lock()
	s.p.cond.Broadcast()
	s.p.mu.Unlock()
}

// flushBatch is the post-drain policy step: under SyncAlways the batch
// group-commits (one fsync covers every record drained in it).
func (s *stream) flushBatch() error {
	if s.p.cfg.Policy == SyncAlways {
		return s.syncNow()
	}
	return nil
}

// Idle pacing. An empty persister first poll-sleeps (shallowPoll at a
// time, costing the producers nothing), and only after parkAfterPolls
// consecutive empty polls — ~100ms of real idleness — parks on its wake
// channel. The two-phase design keeps the producers' kick (a futex
// wake) entirely off the steady-state hot path: between pipelined
// request windows the persister is merely sleeping, not parked, so
// appenders never pay to wake it. Busy-spinning instead would fight the
// table's own spinning server goroutines for cores and lose badly on
// oversubscribed hosts.
const (
	shallowPoll    = 500 * time.Microsecond
	parkAfterPolls = 500
)

// run is the persister goroutine.
func (s *stream) run() {
	defer s.p.wg.Done()
	fail := func(err error) {
		// A failing WAL device cannot be hidden: surface loudly and stop
		// persisting. markBroken stops the appenders (the server keeps
		// serving, cache first), releases Barrier waiters, and turns
		// pending/future roll requests into errors instead of leaving
		// them blocked on a goroutine that no longer exists.
		fmt.Fprintf(os.Stderr, "persist: stream %d: %v\n", s.id, err)
		s.p.markBroken()
	}
	// Interval syncs are driven by a deadline check on the write path,
	// not a timer in a select: a stream under sustained traffic never
	// goes idle, and its fsyncs must not wait until it does.
	lastSync := time.Now()
	syncDeadline := func() error {
		if s.p.cfg.Policy != SyncInterval {
			return nil
		}
		if now := time.Now(); now.Sub(lastSync) >= s.p.cfg.SyncInterval {
			lastSync = now
			return s.syncNow()
		}
		return nil
	}
	// One reusable park timer (interval policy only): armed when the
	// persister parks, stopped on wake, so parking allocates nothing.
	var parkTimer *time.Timer
	if s.p.cfg.Policy == SyncInterval {
		parkTimer = time.NewTimer(time.Hour)
		parkTimer.Stop()
		defer parkTimer.Stop()
	}
	idle := 0
	for {
		// Commands are accepted between batches even under continuous
		// traffic: a snapshot roll must not wait for an idle moment.
		select {
		case reply := <-s.rollReq:
			err := s.openSegment()
			reply <- rollAck{newSeq: s.seq.Load(), err: err}
			if err != nil {
				fail(err)
				return
			}
		case <-s.p.killed:
			return
		default:
		}
		n, err := s.drain()
		if err != nil {
			fail(err)
			return
		}
		if n > 0 {
			idle = 0
			if err := s.flushBatch(); err != nil {
				fail(err)
				return
			}
			if err := syncDeadline(); err != nil {
				fail(err)
				return
			}
			// Honor Barrier requests here too: under sustained traffic
			// this loop never goes idle, and a SyncNone/SyncInterval
			// Barrier would otherwise wait for a pause that may never
			// come.
			if s.syncReq.Swap(false) {
				if err := s.syncNow(); err != nil {
					fail(err)
					return
				}
			}
			continue
		}
		if s.syncReq.Swap(false) {
			if err := s.syncNow(); err != nil {
				fail(err)
				return
			}
			continue
		}
		if s.p.stopping.Load() {
			// Rings drained (n == 0), no pending command: final sync and
			// exit. Producers are quiescent by the Close contract.
			if err := s.seal(); err != nil {
				fail(err)
			}
			return
		}
		if idle++; idle < parkAfterPolls {
			if err := syncDeadline(); err != nil {
				fail(err)
				return
			}
			time.Sleep(shallowPoll)
			continue
		}
		idle = 0
		s.parked.Store(true)
		if s.anyWork() {
			s.parked.Store(false)
			continue
		}
		var tickC <-chan time.Time
		if parkTimer != nil {
			parkTimer.Reset(s.p.cfg.SyncInterval)
			tickC = parkTimer.C
		}
		select {
		case <-s.wake:
		case reply := <-s.rollReq:
			err := s.openSegment()
			reply <- rollAck{newSeq: s.seq.Load(), err: err}
			if err != nil {
				s.parked.Store(false)
				fail(err)
				return
			}
		case <-tickC:
			lastSync = time.Now()
			if err := s.syncNow(); err != nil {
				s.parked.Store(false)
				fail(err)
				return
			}
		case <-s.p.killed:
			// Abrupt death: leave buffered bytes unflushed, exactly like
			// a crash.
			s.parked.Store(false)
			return
		}
		s.parked.Store(false)
		if parkTimer != nil {
			parkTimer.Stop()
		}
	}
}

// anyWork reports whether any assigned appender has published records.
func (s *stream) anyWork() bool {
	for _, a := range *s.apps.Load() {
		if a.pub.Len() > 0 {
			return true
		}
	}
	return false
}

// roll asks the persister to seal the current segment and open a fresh
// one, returning the fresh segment's seq. Used by the snapshotter: every
// segment sealed before the roll is covered by the snapshot that
// follows.
func (s *stream) roll() (uint64, error) {
	reply := make(chan rollAck, 1)
	select {
	case s.rollReq <- reply:
	case <-s.p.killed:
		return 0, fmt.Errorf("persist: pipeline killed")
	case <-s.p.broken:
		return 0, fmt.Errorf("persist: stream %d persister failed", s.id)
	}
	select {
	case ack := <-reply:
		return ack.newSeq, ack.err
	case <-s.p.broken:
		// The persister accepted the request and then died on it.
		return 0, fmt.Errorf("persist: stream %d persister failed", s.id)
	}
}

// --- replay ---

// replaySegment streams the valid frame prefix of one segment into fn,
// stopping cleanly at a torn or corrupt frame. It returns the number of
// applied records and whether the segment ended with a tear.
func replaySegment(path string, fn func(op byte, key uint64, expireAt int64, ver uint64, value []byte) error) (records int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, true, nil // shorter than a header: torn at birth
	}
	if string(hdr[:8]) != walMagic {
		return 0, false, fmt.Errorf("persist: %s: bad segment magic", path)
	}
	var frame [frameHeaderLen]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return records, err != io.EOF, nil // EOF = clean end; short = torn
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if n < recHeaderLen || n > maxRecordLen {
			return records, true, nil // corrupt length: end of valid prefix
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, true, nil // torn mid-payload
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return records, true, nil // torn or bit-rotted: stop here
		}
		op := payload[0]
		key := binary.LittleEndian.Uint64(payload[1:9])
		exp := int64(binary.LittleEndian.Uint64(payload[9:17]))
		ver := binary.LittleEndian.Uint64(payload[17:25])
		if err := fn(op, key, exp, ver, payload[25:]); err != nil {
			return records, false, err
		}
		records++
	}
}
