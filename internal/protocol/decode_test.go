package protocol

import (
	"bufio"
	"bytes"
	"testing"
)

// encodeAll serializes requests into one stream.
func encodeAll(t *testing.T, reqs ...Request) *bufio.Reader {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, r := range reqs {
		if err := WriteRequest(w, r); err != nil {
			t.Fatalf("WriteRequest: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return bufio.NewReader(&buf)
}

// TestDecodeRequestInto_MatchesReadRequest decodes the same stream through
// both APIs and requires identical results.
func TestDecodeRequestInto_MatchesReadRequest(t *testing.T) {
	var slots SlotSet
	slots.Add(3)
	slots.Add(250)
	reqs := []Request{
		{Op: OpLookup, Key: 42},
		{Op: OpInsert, Key: 7, Value: []byte("value-bytes")},
		{Op: OpInsertTTL, Key: 9, TTL: 1500, Value: []byte("ttl-value")},
		{Op: OpGetStr, StrKey: []byte("a-string-key")},
		{Op: OpSetStr, StrKey: []byte("k"), TTL: 12, Value: []byte("v")},
		{Op: OpSetStr, StrKey: []byte{}, Value: []byte{}},
		{Op: OpDelStr, StrKey: []byte("gone")},
		{Op: OpDelete, Key: 1},
		{Op: OpScan, Slots: slots, Cursor: 77, Count: 10},
		{Op: OpPurge, Slots: slots, Cursor: ScanDone - 1},
	}
	plain := encodeAll(t, reqs...)
	arena := encodeAll(t, reqs...)
	var scratch []byte
	var req Request
	for i := range reqs {
		want, err := ReadRequest(plain)
		if err != nil {
			t.Fatalf("req %d: ReadRequest: %v", i, err)
		}
		scratch, err = DecodeRequestInto(arena, &req, scratch[:0])
		if err != nil {
			t.Fatalf("req %d: DecodeRequestInto: %v", i, err)
		}
		if req.Op != want.Op || req.Key != want.Key || req.TTL != want.TTL ||
			req.Cursor != want.Cursor || req.Count != want.Count || req.Slots != want.Slots {
			t.Fatalf("req %d: fixed fields differ: got %+v want %+v", i, req, want)
		}
		if !bytes.Equal(req.StrKey, want.StrKey) || (req.StrKey == nil) != (want.StrKey == nil) {
			t.Fatalf("req %d: StrKey = %q (nil=%v), want %q (nil=%v)",
				i, req.StrKey, req.StrKey == nil, want.StrKey, want.StrKey == nil)
		}
		if !bytes.Equal(req.Value, want.Value) || (req.Value == nil) != (want.Value == nil) {
			t.Fatalf("req %d: Value = %q (nil=%v), want %q (nil=%v)",
				i, req.Value, req.Value == nil, want.Value, want.Value == nil)
		}
	}
}

// TestDecodeRequestInto_AliasesScratch verifies the ownership contract:
// decoded bytes live in the returned arena, and recycling the arena for
// the next request reuses the same backing memory (no per-request
// allocation).
func TestDecodeRequestInto_AliasesScratch(t *testing.T) {
	r := encodeAll(t,
		Request{Op: OpSetStr, StrKey: []byte("key-one"), Value: []byte("value-one")},
		Request{Op: OpSetStr, StrKey: []byte("key-two"), Value: []byte("value-two")},
	)
	scratch := make([]byte, 0, 256)
	base := &scratch[:1][0]
	var req Request
	scratch, err := DecodeRequestInto(r, &req, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(req.StrKey) + len(req.Value); len(scratch) != got {
		t.Fatalf("scratch grew to %d bytes, want %d (StrKey+Value)", len(scratch), got)
	}
	if &req.StrKey[0] != &scratch[0] {
		t.Fatal("StrKey does not alias the scratch arena")
	}
	if &scratch[0] != base {
		t.Fatal("scratch was reallocated despite sufficient capacity")
	}
	// Overwriting the arena must clobber the decoded request — that IS the
	// aliasing contract the server's recycling relies on.
	copy(scratch, "XXXXXXX")
	if string(req.StrKey) != "XXXXXXX" {
		t.Fatalf("expected StrKey to observe arena overwrite, got %q", req.StrKey)
	}
	// Recycle for the next frame: same backing array, fresh contents.
	scratch, err = DecodeRequestInto(r, &req, scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &scratch[0] != base {
		t.Fatal("recycled decode reallocated the arena")
	}
	if string(req.StrKey) != "key-two" || string(req.Value) != "value-two" {
		t.Fatalf("recycled decode got (%q, %q)", req.StrKey, req.Value)
	}
}

// TestDecodeRequestInto_TruncationLeavesScratchUngrown checks the error
// contract: a truncated frame must not leave half-read bytes in the arena.
func TestDecodeRequestInto_TruncationLeavesScratchUngrown(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, Request{Op: OpInsert, Key: 3, Value: bytes.Repeat([]byte("x"), 100)}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-10]
	var req Request
	scratch := make([]byte, 0, 256)
	scratch, err := DecodeRequestInto(bufio.NewReader(bytes.NewReader(trunc)), &req, scratch)
	if err == nil {
		t.Fatal("expected truncation error")
	}
	if len(scratch) != 0 {
		t.Fatalf("scratch grew to %d bytes on a failed decode", len(scratch))
	}

	// A SET_STR truncated after its string key was already appended must
	// still return scratch un-grown — the key bytes roll back too.
	buf.Reset()
	w = bufio.NewWriter(&buf)
	if err := WriteRequest(w, Request{Op: OpSetStr, StrKey: []byte("the-key"), Value: bytes.Repeat([]byte("y"), 50)}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	trunc = buf.Bytes()[:buf.Len()-10]
	scratch, err = DecodeRequestInto(bufio.NewReader(bytes.NewReader(trunc)), &req, scratch[:0])
	if err == nil {
		t.Fatal("expected truncation error")
	}
	if len(scratch) != 0 {
		t.Fatalf("scratch kept %d bytes (the decoded key?) on a failed SET_STR decode", len(scratch))
	}
}

// TestReadScanResponseInto_Arena round-trips a scan batch through the
// arena variant and verifies values and arena recycling.
func TestReadScanResponseInto_Arena(t *testing.T) {
	entries := []ScanEntry{
		{Key: 1, TTL: 0, Value: []byte("alpha")},
		{Key: 2, TTL: 900, Value: []byte("beta-bytes")},
		{Key: 3, TTL: 0, Value: []byte{}},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteScanResponse(w, 55, entries); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	scratch := make([]byte, 0, 64)
	dst := make([]ScanEntry, 0, 4)
	next, got, scratch, err := ReadScanResponseInto(bufio.NewReader(&buf), dst, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if next != 55 || len(got) != len(entries) {
		t.Fatalf("next=%d len=%d, want 55, %d", next, len(got), len(entries))
	}
	for i, e := range got {
		if e.Key != entries[i].Key || e.TTL != entries[i].TTL || !bytes.Equal(e.Value, entries[i].Value) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, entries[i])
		}
		if e.Value == nil {
			t.Fatalf("entry %d has nil value", i)
		}
	}
	if want := len("alpha") + len("beta-bytes"); len(scratch) != want {
		t.Fatalf("arena holds %d bytes, want %d", len(scratch), want)
	}
}

// TestWireCodecs_NoAllocs pins the zero-allocation property of the
// steady-state codec paths; a regression here silently reintroduces a
// per-operation allocation on every server in the fleet.
func TestWireCodecs_NoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	var stream bytes.Buffer
	w := bufio.NewWriterSize(&stream, 64<<10)
	r := bufio.NewReaderSize(&stream, 64<<10)
	val := bytes.Repeat([]byte("v"), 64)
	scratch := make([]byte, 0, 256)
	dst := make([]byte, 0, 256)
	var req Request

	writeAllocs := testing.AllocsPerRun(200, func() {
		stream.Reset()
		w.Reset(&stream)
		if err := WriteRequest(w, Request{Op: OpLookup, Key: 1}); err != nil {
			t.Fatal(err)
		}
		if err := WriteRequest(w, Request{Op: OpInsert, Key: 2, Value: val}); err != nil {
			t.Fatal(err)
		}
		if err := WriteLookupResponse(w, val, true); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if writeAllocs > 0 {
		t.Errorf("write path allocates %.1f allocs/run, want 0", writeAllocs)
	}

	readAllocs := testing.AllocsPerRun(200, func() {
		stream.Reset()
		w.Reset(&stream)
		_ = WriteRequest(w, Request{Op: OpLookup, Key: 1})
		_ = WriteRequest(w, Request{Op: OpInsert, Key: 2, Value: val})
		_ = WriteLookupResponse(w, val, true)
		_ = w.Flush()
		r.Reset(&stream)
		var err error
		if scratch, err = DecodeRequestInto(r, &req, scratch[:0]); err != nil {
			t.Fatal(err)
		}
		if scratch, err = DecodeRequestInto(r, &req, scratch[:0]); err != nil {
			t.Fatal(err)
		}
		var found bool
		if dst, found, err = ReadLookupResponse(r, dst[:0]); err != nil || !found {
			t.Fatalf("lookup response: found=%v err=%v", found, err)
		}
	})
	if readAllocs > 0 {
		t.Errorf("read path allocates %.1f allocs/run, want 0", readAllocs)
	}
}
