package protocol

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// TestQuickReadRequestNeverPanics: arbitrary byte streams must produce a
// request or an error, never a panic or a huge allocation.
func TestQuickReadRequestNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		r := bufio.NewReader(bytes.NewReader(raw))
		for {
			req, err := ReadRequest(r)
			if err != nil {
				return true // any error terminates parsing cleanly
			}
			if len(req.Value) > MaxValueSize {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadResponseNeverPanics: same for the response parser.
func TestQuickReadResponseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		r := bufio.NewReader(bytes.NewReader(raw))
		for {
			v, _, err := ReadLookupResponse(r, nil)
			if err != nil {
				return true
			}
			if len(v) > MaxValueSize {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidStreamAlwaysParses: any sequence of valid requests written
// back-to-back parses back to identical requests — with arbitrary trailing
// garbage detected as an error, not silently swallowed.
func TestQuickValidStreamAlwaysParses(t *testing.T) {
	f := func(keys []uint64, vals [][]byte) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		var want []Request
		for i, k := range keys {
			var req Request
			if i < len(vals) && vals[i] != nil {
				v := vals[i]
				if len(v) > 1024 {
					v = v[:1024]
				}
				req = Request{Op: OpInsert, Key: k, Value: v}
			} else {
				req = Request{Op: OpLookup, Key: k}
			}
			if WriteRequest(w, req) != nil {
				return false
			}
			want = append(want, req)
		}
		w.Flush()
		r := bufio.NewReader(&buf)
		for _, wr := range want {
			got, err := ReadRequest(r)
			if err != nil || got.Op != wr.Op || got.Key != wr.Key || !bytes.Equal(got.Value, wr.Value) {
				return false
			}
		}
		_, err := ReadRequest(r)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
