package protocol

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// TestQuickReadRequestNeverPanics: arbitrary byte streams must produce a
// request or an error, never a panic or a huge allocation.
func TestQuickReadRequestNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		r := bufio.NewReader(bytes.NewReader(raw))
		for {
			req, err := ReadRequest(r)
			if err != nil {
				return true // any error terminates parsing cleanly
			}
			if len(req.Value) > MaxValueSize {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadResponseNeverPanics: same for the response parser.
func TestQuickReadResponseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		r := bufio.NewReader(bytes.NewReader(raw))
		for {
			v, _, err := ReadLookupResponse(r, nil)
			if err != nil {
				return true
			}
			if len(v) > MaxValueSize {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidStreamAlwaysParses: any sequence of valid requests written
// back-to-back parses back to identical requests — with arbitrary trailing
// garbage detected as an error, not silently swallowed.
func TestQuickValidStreamAlwaysParses(t *testing.T) {
	f := func(keys []uint64, vals [][]byte) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		var want []Request
		for i, k := range keys {
			var req Request
			if i < len(vals) && vals[i] != nil {
				v := vals[i]
				if len(v) > 1024 {
					v = v[:1024]
				}
				req = Request{Op: OpInsert, Key: k, Value: v}
			} else {
				req = Request{Op: OpLookup, Key: k}
			}
			if WriteRequest(w, req) != nil {
				return false
			}
			want = append(want, req)
		}
		w.Flush()
		r := bufio.NewReader(&buf)
		for _, wr := range want {
			got, err := ReadRequest(r)
			if err != nil || got.Op != wr.Op || got.Key != wr.Key || !bytes.Equal(got.Value, wr.Value) {
				return false
			}
		}
		_, err := ReadRequest(r)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// requestEqual compares parsed requests field by field, treating nil and
// empty slices as equal (the wire cannot distinguish them).
func requestEqual(a, b Request) bool {
	return a.Op == b.Op && a.Key == b.Key && a.TTL == b.TTL &&
		bytes.Equal(a.StrKey, b.StrKey) && bytes.Equal(a.Value, b.Value) &&
		a.Slots == b.Slots && a.Cursor == b.Cursor && a.Count == b.Count
}

// TestQuickV2StreamRoundTrips: arbitrary mixed streams of every version-2
// op (DELETE, INSERT_TTL, GET_STR, SET_STR, DEL_STR) interleaved with
// version-1 ops round-trip exactly.
func TestQuickV2StreamRoundTrips(t *testing.T) {
	ops := []uint8{OpLookup, OpInsert, OpDelete, OpInsertTTL, OpGetStr, OpSetStr, OpDelStr}
	f := func(sel []uint8, keys []uint64, ttls []uint32, blobs [][]byte) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		var want []Request
		blob := func(i, max int) []byte {
			if len(blobs) == 0 {
				return []byte{}
			}
			b := blobs[i%len(blobs)]
			if len(b) > max {
				b = b[:max]
			}
			if b == nil {
				b = []byte{}
			}
			return b
		}
		for i, s := range sel {
			req := Request{Op: ops[int(s)%len(ops)]}
			if len(keys) > 0 {
				req.Key = keys[i%len(keys)]
			}
			switch req.Op {
			case OpGetStr, OpSetStr, OpDelStr:
				req.Key = 0
				req.StrKey = blob(i, MaxKeyLen)
			}
			switch req.Op {
			case OpInsertTTL, OpSetStr:
				if len(ttls) > 0 {
					req.TTL = ttls[i%len(ttls)]
				}
			}
			switch req.Op {
			case OpInsert, OpInsertTTL, OpSetStr:
				req.Value = blob(i+1, 1024)
			}
			if err := WriteRequest(w, req); err != nil {
				return false
			}
			want = append(want, req)
		}
		w.Flush()
		r := bufio.NewReader(&buf)
		for _, wr := range want {
			got, err := ReadRequest(r)
			if err != nil || !requestEqual(got, wr) {
				return false
			}
		}
		_, err := ReadRequest(r)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickV3StreamRoundTrips: arbitrary mixed streams including the
// version-3 SCAN/PURGE frames (slot bitmaps, cursors, counts) round-trip
// exactly and terminate with a clean EOF.
func TestQuickV3StreamRoundTrips(t *testing.T) {
	f := func(sel []uint8, slots [][]byte, cursors []uint64, counts []uint32, keys []uint64) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		var want []Request
		for i, s := range sel {
			var req Request
			switch s % 4 {
			case 0:
				req = Request{Op: OpScan}
			case 1:
				req = Request{Op: OpPurge}
			case 2:
				req = Request{Op: OpLookup}
			case 3:
				req = Request{Op: OpDelete}
			}
			if len(keys) > 0 {
				k := keys[i%len(keys)]
				if req.Op == OpScan || req.Op == OpPurge {
					if len(cursors) > 0 {
						req.Cursor = cursors[i%len(cursors)]
					}
					if len(counts) > 0 {
						req.Count = counts[i%len(counts)] % (MaxScanBatch + 1)
					}
					if len(slots) > 0 {
						for _, b := range slots[i%len(slots)] {
							req.Slots.Add(int(b))
						}
					}
				} else {
					req.Key = k
				}
			}
			if err := WriteRequest(w, req); err != nil {
				return false
			}
			want = append(want, req)
		}
		w.Flush()
		r := bufio.NewReader(&buf)
		for _, wr := range want {
			got, err := ReadRequest(r)
			if err != nil || !requestEqual(got, wr) {
				return false
			}
		}
		_, err := ReadRequest(r)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReadScanResponseNeverPanics: arbitrary byte streams fed to the
// scan-response parser produce entries or an error, never a panic or an
// over-bound allocation.
func TestQuickReadScanResponseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		r := bufio.NewReader(bytes.NewReader(raw))
		for {
			_, entries, err := ReadScanResponse(r, nil)
			if err != nil {
				return true
			}
			if len(entries) > MaxScanBatch {
				return false
			}
			for _, e := range entries {
				if len(e.Value) > MaxValueSize {
					return false
				}
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanResponseRoundTrips: scan batches of arbitrary entries
// round-trip exactly (values clipped to a sane fuzz bound).
func TestQuickScanResponseRoundTrips(t *testing.T) {
	f := func(next uint64, ks []uint64, ttls []uint32, vals [][]byte) bool {
		var entries []ScanEntry
		for i, k := range ks {
			e := ScanEntry{Key: k}
			if len(ttls) > 0 {
				e.TTL = ttls[i%len(ttls)]
			}
			if len(vals) > 0 {
				v := vals[i%len(vals)]
				if len(v) > 1024 {
					v = v[:1024]
				}
				e.Value = v
			}
			entries = append(entries, e)
			if len(entries) == MaxScanBatch {
				break
			}
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if WriteScanResponse(w, next, entries) != nil {
			return false
		}
		w.Flush()
		gotNext, got, err := ReadScanResponse(bufio.NewReader(&buf), nil)
		if err != nil || gotNext != next || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i].Key != entries[i].Key || got[i].TTL != entries[i].TTL ||
				!bytes.Equal(got[i].Value, entries[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteResponseRoundTrips: delete responses round-trip and the
// reader never panics on garbage (it is a single byte, so any byte parses).
func TestQuickDeleteResponseRoundTrips(t *testing.T) {
	f := func(found []bool) bool {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		for _, fd := range found {
			if WriteDeleteResponse(w, fd) != nil {
				return false
			}
		}
		w.Flush()
		r := bufio.NewReader(&buf)
		for _, fd := range found {
			got, err := ReadDeleteResponse(r)
			if err != nil || got != fd {
				return false
			}
		}
		_, err := ReadDeleteResponse(r)
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringEntryRoundTrips: AppendStringEntry/CutStringEntry are
// inverses for the matching key, and a different key never reads the
// entry (unless it is byte-identical).
func TestQuickStringEntryRoundTrips(t *testing.T) {
	f := func(key, other, value []byte) bool {
		raw := AppendStringEntry(nil, key, value)
		v, ok := CutStringEntry(raw, key)
		if !ok || !bytes.Equal(v, value) {
			return false
		}
		if !bytes.Equal(other, key) {
			if _, ok := CutStringEntry(raw, other); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestOversizeFramesRejected: writer and reader both refuse frames beyond
// the protocol bounds.
func TestOversizeFramesRejected(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, Request{Op: OpSetStr, StrKey: make([]byte, MaxKeyLen+1)}); err == nil {
		t.Error("oversize string key accepted by writer")
	}
	if err := WriteRequest(w, Request{Op: OpInsertTTL, Key: 1, Value: make([]byte, MaxValueSize+1)}); err == nil {
		t.Error("oversize value accepted by writer")
	}
	// A crafted oversize klen on the wire must be rejected by the reader.
	buf.Reset()
	buf.Write([]byte{OpGetStr, 0xff, 0xff}) // klen = 65535 > MaxKeyLen
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Error("oversize wire klen accepted by reader")
	}
}
