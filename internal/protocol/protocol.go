// Package protocol implements CPSERVER's binary wire protocol (Section 4.1
// of the CPHash paper). There are two request types:
//
//	LOOKUP:  op(1) | key(8)
//	INSERT:  op(1) | key(8) | size(4) | value(size)
//
// A LOOKUP elicits a response — size(4) | value(size) — with size 0
// meaning "not found". An INSERT is performed silently: the server sends
// no response, exactly as in the paper.
//
// Integers are little-endian. Keys are 60-bit (high bits must be zero).
package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Op codes.
const (
	// OpLookup asks for the value under a key.
	OpLookup uint8 = 1
	// OpInsert stores a value under a key, silently.
	OpInsert uint8 = 2
)

// MaxValueSize bounds a value (and therefore a frame); larger sizes are
// treated as protocol errors so a corrupt stream cannot force huge
// allocations.
const MaxValueSize = 16 << 20

// Request is one parsed client request.
type Request struct {
	Op    uint8
	Key   uint64
	Value []byte // INSERT payload; nil for LOOKUP
}

// WriteRequest serializes r. The caller flushes the writer when its batch
// is complete (batching is the point of the protocol).
func WriteRequest(w *bufio.Writer, r Request) error {
	var hdr [13]byte
	hdr[0] = r.Op
	binary.LittleEndian.PutUint64(hdr[1:], r.Key)
	switch r.Op {
	case OpLookup:
		_, err := w.Write(hdr[:9])
		return err
	case OpInsert:
		if len(r.Value) > MaxValueSize {
			return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(r.Value), MaxValueSize)
		}
		binary.LittleEndian.PutUint32(hdr[9:], uint32(len(r.Value)))
		if _, err := w.Write(hdr[:13]); err != nil {
			return err
		}
		_, err := w.Write(r.Value)
		return err
	default:
		return fmt.Errorf("protocol: unknown op %d", r.Op)
	}
}

// ReadRequest parses one request. The returned Value (for INSERT) is a
// fresh copy owned by the caller. io.EOF is returned cleanly only at a
// message boundary.
func ReadRequest(r *bufio.Reader) (Request, error) {
	op, err := r.ReadByte()
	if err != nil {
		return Request{}, err // io.EOF at boundary is clean shutdown
	}
	var keyBuf [8]byte
	if _, err := io.ReadFull(r, keyBuf[:]); err != nil {
		return Request{}, unexpected(err)
	}
	req := Request{Op: op, Key: binary.LittleEndian.Uint64(keyBuf[:])}
	switch op {
	case OpLookup:
		return req, nil
	case OpInsert:
		var szBuf [4]byte
		if _, err := io.ReadFull(r, szBuf[:]); err != nil {
			return Request{}, unexpected(err)
		}
		size := binary.LittleEndian.Uint32(szBuf[:])
		if size > MaxValueSize {
			return Request{}, fmt.Errorf("protocol: value size %d exceeds maximum %d", size, MaxValueSize)
		}
		req.Value = make([]byte, size)
		if _, err := io.ReadFull(r, req.Value); err != nil {
			return Request{}, unexpected(err)
		}
		return req, nil
	default:
		return Request{}, fmt.Errorf("protocol: unknown op %d", op)
	}
}

// WriteLookupResponse serializes a LOOKUP response; found=false (or an
// empty value with found=true is indistinguishable on the wire, as in the
// paper: "a size field of zero").
func WriteLookupResponse(w *bufio.Writer, value []byte, found bool) error {
	var szBuf [4]byte
	if !found {
		_, err := w.Write(szBuf[:])
		return err
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(value), MaxValueSize)
	}
	binary.LittleEndian.PutUint32(szBuf[:], uint32(len(value)))
	if _, err := w.Write(szBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

// ReadLookupResponse parses one LOOKUP response, appending the value to
// dst. found is false for a zero-size response.
func ReadLookupResponse(r *bufio.Reader, dst []byte) (out []byte, found bool, err error) {
	var szBuf [4]byte
	if _, err := io.ReadFull(r, szBuf[:]); err != nil {
		return dst, false, err
	}
	size := binary.LittleEndian.Uint32(szBuf[:])
	if size == 0 {
		return dst, false, nil
	}
	if size > MaxValueSize {
		return dst, false, fmt.Errorf("protocol: response size %d exceeds maximum %d", size, MaxValueSize)
	}
	n := len(dst)
	dst = append(dst, make([]byte, size)...)
	if _, err := io.ReadFull(r, dst[n:]); err != nil {
		return dst[:n], false, unexpected(err)
	}
	return dst, true, nil
}

// unexpected converts a mid-frame EOF into io.ErrUnexpectedEOF so callers
// can distinguish clean shutdown from truncation.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
