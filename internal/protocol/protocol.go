// Package protocol implements CPSERVER's binary wire protocol. Version 1
// is Section 4.1 of the CPHash paper verbatim:
//
//	LOOKUP:  op(1) | key(8)
//	INSERT:  op(1) | key(8) | size(4) | value(size)
//
// A LOOKUP elicits a response — size(4) | value(size) — with size 0
// meaning "not found". An INSERT is performed silently: the server sends
// no response, exactly as in the paper.
//
// Version 2 extends the protocol toward a full memcached-class cache
// while keeping every version-1 frame byte-identical:
//
//	DELETE:      op(1) | key(8)
//	INSERT_TTL:  op(1) | key(8) | ttl_ms(4) | size(4) | value(size)
//	GET_STR:     op(1) | klen(2) | key(klen)
//	SET_STR:     op(1) | klen(2) | key(klen) | ttl_ms(4) | size(4) | value(size)
//	DEL_STR:     op(1) | klen(2) | key(klen)
//
// A DELETE/DEL_STR elicits a one-byte response — found(1), nonzero when
// the key existed — so clients can synchronize on deletion. GET_STR is
// answered like LOOKUP. SET_STR and INSERT_TTL are silent like INSERT.
// A ttl_ms of zero means "never expires"; otherwise the entry becomes
// invisible ttl_ms milliseconds after the server stores it.
//
// String keys are variable-length (up to MaxKeyLen bytes) and are routed
// to the fixed 60-bit key space by HashStringKey, the paper's Section 8.2
// extension; AppendStringEntry/CutStringEntry define the stored-entry
// framing that makes 60-bit hash collisions detectable.
//
// Integers are little-endian. Fixed keys are 60-bit (high bits must be
// zero). Servers that only speak version 1 treat version-2 opcodes as a
// protocol error and drop the connection, so version negotiation is
// implicit: a client probes with a DELETE and falls back on disconnect.
package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
)

// Op codes. Ops 1–2 are protocol version 1 (the paper's CPSERVER); ops
// 3–7 are version 2.
const (
	// OpLookup asks for the value under a key.
	OpLookup uint8 = 1
	// OpInsert stores a value under a key, silently.
	OpInsert uint8 = 2
	// OpDelete removes a key; the response is one found-byte.
	OpDelete uint8 = 3
	// OpInsertTTL is OpInsert with a leading ttl_ms field.
	OpInsertTTL uint8 = 4
	// OpGetStr is OpLookup with a variable-length string key.
	OpGetStr uint8 = 5
	// OpSetStr is OpInsertTTL with a variable-length string key.
	OpSetStr uint8 = 6
	// OpDelStr is OpDelete with a variable-length string key.
	OpDelStr uint8 = 7
)

// Version is the highest protocol version this package speaks.
const Version = 2

// OpVersion returns the protocol version that introduced op, or 0 for an
// unknown opcode.
func OpVersion(op uint8) int {
	switch op {
	case OpLookup, OpInsert:
		return 1
	case OpDelete, OpInsertTTL, OpGetStr, OpSetStr, OpDelStr:
		return 2
	default:
		return 0
	}
}

// MaxValueSize bounds a value (and therefore a frame); larger sizes are
// treated as protocol errors so a corrupt stream cannot force huge
// allocations.
const MaxValueSize = 16 << 20

// MaxKeyLen bounds a string key. Wire klen is 16-bit, but memcached-class
// traffic never needs more than this and the bound keeps per-request
// allocations small.
const MaxKeyLen = 4 << 10

// maxFixedKey is the largest valid fixed key (60 bits, as in the paper).
const maxFixedKey = 1<<60 - 1

// Request is one parsed client request.
type Request struct {
	Op     uint8
	Key    uint64 // fixed 60-bit key; unset for string-key ops
	StrKey []byte // string key for OpGetStr/OpSetStr/OpDelStr
	TTL    uint32 // milliseconds; 0 = never expires (OpInsertTTL/OpSetStr)
	Value  []byte // INSERT/INSERT_TTL/SET_STR payload
}

// hasStrKey reports whether op carries a variable-length key.
func hasStrKey(op uint8) bool {
	return op == OpGetStr || op == OpSetStr || op == OpDelStr
}

// hasValue reports whether op carries a ttl+size+value trailer.
func hasValue(op uint8) bool {
	return op == OpInsert || op == OpInsertTTL || op == OpSetStr
}

// WriteRequest serializes r. The caller flushes the writer when its batch
// is complete (batching is the point of the protocol).
func WriteRequest(w *bufio.Writer, r Request) error {
	// Validate the whole frame before buffering any byte of it: a failed
	// call must leave the stream clean for the caller's next request.
	if OpVersion(r.Op) == 0 {
		return fmt.Errorf("protocol: unknown op %d", r.Op)
	}
	if hasStrKey(r.Op) && len(r.StrKey) > MaxKeyLen {
		return fmt.Errorf("protocol: key of %d bytes exceeds maximum %d", len(r.StrKey), MaxKeyLen)
	}
	if hasValue(r.Op) && len(r.Value) > MaxValueSize {
		return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(r.Value), MaxValueSize)
	}
	if err := w.WriteByte(r.Op); err != nil {
		return err
	}
	var scratch [8]byte
	if hasStrKey(r.Op) {
		binary.LittleEndian.PutUint16(scratch[:], uint16(len(r.StrKey)))
		if _, err := w.Write(scratch[:2]); err != nil {
			return err
		}
		if _, err := w.Write(r.StrKey); err != nil {
			return err
		}
	} else {
		binary.LittleEndian.PutUint64(scratch[:], r.Key)
		if _, err := w.Write(scratch[:8]); err != nil {
			return err
		}
	}
	if r.Op == OpInsertTTL || r.Op == OpSetStr {
		binary.LittleEndian.PutUint32(scratch[:], r.TTL)
		if _, err := w.Write(scratch[:4]); err != nil {
			return err
		}
	}
	if hasValue(r.Op) {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(r.Value)))
		if _, err := w.Write(scratch[:4]); err != nil {
			return err
		}
		_, err := w.Write(r.Value)
		return err
	}
	return nil
}

// ReadRequest parses one request. The returned StrKey/Value slices are
// fresh copies owned by the caller. io.EOF is returned cleanly only at a
// message boundary.
func ReadRequest(r *bufio.Reader) (Request, error) {
	op, err := r.ReadByte()
	if err != nil {
		return Request{}, err // io.EOF at boundary is clean shutdown
	}
	if OpVersion(op) == 0 {
		return Request{}, fmt.Errorf("protocol: unknown op %d", op)
	}
	req := Request{Op: op}
	var scratch [8]byte
	if hasStrKey(op) {
		if _, err := io.ReadFull(r, scratch[:2]); err != nil {
			return Request{}, unexpected(err)
		}
		klen := binary.LittleEndian.Uint16(scratch[:2])
		if klen > MaxKeyLen {
			return Request{}, fmt.Errorf("protocol: key length %d exceeds maximum %d", klen, MaxKeyLen)
		}
		req.StrKey = make([]byte, klen)
		if _, err := io.ReadFull(r, req.StrKey); err != nil {
			return Request{}, unexpected(err)
		}
	} else {
		if _, err := io.ReadFull(r, scratch[:8]); err != nil {
			return Request{}, unexpected(err)
		}
		req.Key = binary.LittleEndian.Uint64(scratch[:8])
	}
	if op == OpInsertTTL || op == OpSetStr {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return Request{}, unexpected(err)
		}
		req.TTL = binary.LittleEndian.Uint32(scratch[:4])
	}
	if hasValue(op) {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return Request{}, unexpected(err)
		}
		size := binary.LittleEndian.Uint32(scratch[:4])
		if size > MaxValueSize {
			return Request{}, fmt.Errorf("protocol: value size %d exceeds maximum %d", size, MaxValueSize)
		}
		req.Value = make([]byte, size)
		if _, err := io.ReadFull(r, req.Value); err != nil {
			return Request{}, unexpected(err)
		}
	}
	return req, nil
}

// WriteLookupResponse serializes a LOOKUP/GET_STR response; found=false
// (or an empty value with found=true) is indistinguishable on the wire, as
// in the paper: "a size field of zero".
func WriteLookupResponse(w *bufio.Writer, value []byte, found bool) error {
	var szBuf [4]byte
	if !found {
		_, err := w.Write(szBuf[:])
		return err
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(value), MaxValueSize)
	}
	binary.LittleEndian.PutUint32(szBuf[:], uint32(len(value)))
	if _, err := w.Write(szBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

// ReadLookupResponse parses one LOOKUP/GET_STR response, appending the
// value to dst. found is false for a zero-size response.
func ReadLookupResponse(r *bufio.Reader, dst []byte) (out []byte, found bool, err error) {
	var szBuf [4]byte
	if _, err := io.ReadFull(r, szBuf[:]); err != nil {
		return dst, false, err
	}
	size := binary.LittleEndian.Uint32(szBuf[:])
	if size == 0 {
		return dst, false, nil
	}
	if size > MaxValueSize {
		return dst, false, fmt.Errorf("protocol: response size %d exceeds maximum %d", size, MaxValueSize)
	}
	n := len(dst)
	dst = append(dst, make([]byte, size)...)
	if _, err := io.ReadFull(r, dst[n:]); err != nil {
		return dst[:n], false, unexpected(err)
	}
	return dst, true, nil
}

// WriteDeleteResponse serializes a DELETE/DEL_STR response: one byte,
// nonzero when the key existed.
func WriteDeleteResponse(w *bufio.Writer, found bool) error {
	b := byte(0)
	if found {
		b = 1
	}
	return w.WriteByte(b)
}

// ReadDeleteResponse parses one DELETE/DEL_STR response.
func ReadDeleteResponse(r *bufio.Reader) (found bool, err error) {
	b, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

// unexpected converts a mid-frame EOF into io.ErrUnexpectedEOF so callers
// can distinguish clean shutdown from truncation.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- string-key routing (the paper's §8.2 extension) ---
//
// A string key is hashed onto the fixed 60-bit key space; the stored
// value embeds the key string so a 60-bit collision is detected at read
// time and reported as a miss (cache semantics make that correct). The
// same framing is used by the client-side StringTable and the server-side
// GET_STR/SET_STR handlers, so entries written through either surface are
// readable through the other.

// HashStringKey maps a string key onto the 60-bit fixed key space
// (FNV-1a, masked).
func HashStringKey(key []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return h.Sum64() & maxFixedKey
}

// AppendStringEntry appends the stored-entry encoding of (key, value) —
// klen(4) | key | value — to dst and returns the extended slice.
func AppendStringEntry(dst, key, value []byte) []byte {
	var klen [4]byte
	binary.LittleEndian.PutUint32(klen[:], uint32(len(key)))
	dst = append(dst, klen[:]...)
	dst = append(dst, key...)
	return append(dst, value...)
}

// CutStringEntry splits a stored entry, returning the embedded value if
// the embedded key matches key. A mismatch — a 60-bit hash collision or a
// corrupt entry — reports ok=false, which callers treat as a miss.
func CutStringEntry(raw, key []byte) (value []byte, ok bool) {
	if len(raw) < 4 {
		return nil, false
	}
	// Width-safe bounds check: a crafted 32-bit klen must not overflow
	// int arithmetic on 32-bit platforms.
	klen := uint64(binary.LittleEndian.Uint32(raw))
	if klen+4 > uint64(len(raw)) {
		return nil, false
	}
	if string(raw[4:4+klen]) != string(key) {
		return nil, false
	}
	return raw[4+klen:], true
}
