// Package protocol implements CPSERVER's binary wire protocol. Version 1
// is Section 4.1 of the CPHash paper verbatim:
//
//	LOOKUP:  op(1) | key(8)
//	INSERT:  op(1) | key(8) | size(4) | value(size)
//
// A LOOKUP elicits a response — size(4) | value(size) — with size 0
// meaning "not found". An INSERT is performed silently: the server sends
// no response, exactly as in the paper.
//
// Version 2 extends the protocol toward a full memcached-class cache
// while keeping every version-1 frame byte-identical:
//
//	DELETE:      op(1) | key(8)
//	INSERT_TTL:  op(1) | key(8) | ttl_ms(4) | size(4) | value(size)
//	GET_STR:     op(1) | klen(2) | key(klen)
//	SET_STR:     op(1) | klen(2) | key(klen) | ttl_ms(4) | size(4) | value(size)
//	DEL_STR:     op(1) | klen(2) | key(klen)
//
// A DELETE/DEL_STR elicits a one-byte response — found(1), nonzero when
// the key existed — so clients can synchronize on deletion. GET_STR is
// answered like LOOKUP. SET_STR and INSERT_TTL are silent like INSERT.
// A ttl_ms of zero means "never expires"; otherwise the entry becomes
// invisible ttl_ms milliseconds after the server stores it.
//
// Version 3 adds the bulk iteration primitives that online slot migration
// is built on:
//
//	SCAN:   op(1) | slots(32) | cursor(8) | count(4)
//	PURGE:  op(1) | slots(32) | cursor(8) | count(4)
//
// slots is a 256-bit bitmap selecting continuum slots (the top eight bits
// of the splitmix64-mixed key — see internal/cluster); cursor is an opaque
// server-defined iteration position (0 starts a scan) and count bounds the
// entries returned (0 = server default, at most MaxScanBatch). A SCAN
// response is
//
//	next_cursor(8) | n(4) | n × [ key(8) | ttl_ms(4) | size(4) | value(size) ]
//
// where next_cursor is ScanDone once iteration is complete and ttl_ms is
// the entry's REMAINING lifetime (0 = never expires), so a migrator can
// re-insert the entry elsewhere with its TTL preserved. A batch may be
// empty with next_cursor ≠ ScanDone: servers bound the work per round trip
// and the client resumes. A PURGE removes every live entry in the selected
// slots (same bounded-cursor contract) and responds
//
//	next_cursor(8) | removed(4)
//
// String-key entries travel through SCAN as their 60-bit hash key plus the
// stored entry bytes (klen|key|value framing), so replaying them with
// INSERT_TTL on another server reproduces GET_STR-visible state exactly.
//
// String keys are variable-length (up to MaxKeyLen bytes) and are routed
// to the fixed 60-bit key space by HashStringKey, the paper's Section 8.2
// extension; AppendStringEntry/CutStringEntry define the stored-entry
// framing that makes 60-bit hash collisions detectable.
//
// Version 4 adds atomic read-modify-write (the memcached-compatibility op
// set) on top of a per-entry 64-bit CAS version:
//
//	CAS:        op(1) | key(8) | ttl_ms(4) | ver(8) | size(4) | value(size)
//	ADD:        op(1) | key(8) | ttl_ms(4) | size(4) | value(size)
//	REPLACE:    op(1) | key(8) | ttl_ms(4) | size(4) | value(size)
//	APPEND:     op(1) | key(8) | prefix(1) | size(4) | value(size)
//	PREPEND:    op(1) | key(8) | prefix(1) | size(4) | value(size)
//	INCR:       op(1) | key(8) | delta(8) | prefix(1)
//	DECR:       op(1) | key(8) | delta(8) | prefix(1)
//	TOUCH:      op(1) | key(8) | ttl_ms(4)
//	GETS:       op(1) | key(8)
//	INSERT_VER: op(1) | key(8) | ttl_ms(4) | ver(8) | size(4) | value(size)
//
// prefix declares the first prefix bytes of the STORED value an opaque
// header the concatenation/arithmetic must not disturb: PREPEND splices
// after it, INCR/DECR parse (and rewrite) only the bytes past it, and
// APPEND carries it for symmetry (appending never touches the head). The
// memcached front-end stores its 32-bit flags word as a 4-byte value
// prefix and sets prefix=4; native callers use 0.
//
// plus a _STR variant of each (klen(2) | key(klen) replaces key(8)). Every
// read-modify-write op elicits a fixed-size response —
//
//	status(1) | ver(8) | num(8)
//
// — where status is the RMWStatus* code, ver the resulting (or, on
// RMWStatusExists, the conflicting) entry version, and num the resulting
// numeric value for INCR/DECR. GETS is answered like LOOKUP but with the
// entry version ahead of the value:
//
//	found(1) | ver(8) | size(4) | value(size)
//
// INSERT_VER is INSERT_TTL with an explicit entry version, silent like
// INSERT; migration and replica replay use it so CAS versions survive the
// move. SCAN entries also carry the version from version 4 on:
//
//	key(8) | ttl_ms(4) | ver(8) | size(4) | value(size)
//
// Read-modify-writes execute atomically on the owning server goroutine;
// the WAL logs their resulting state, never the operation.
//
// Integers are little-endian. Fixed keys are 60-bit (high bits must be
// zero). Servers that only speak version 1 treat version-2 opcodes as a
// protocol error and drop the connection, so version negotiation is
// implicit: a client probes with a DELETE and falls back on disconnect.
package protocol

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"

	"cphash/internal/partition"
)

// Op codes. Ops 1–2 are protocol version 1 (the paper's CPSERVER); ops
// 3–7 are version 2.
const (
	// OpLookup asks for the value under a key.
	OpLookup uint8 = 1
	// OpInsert stores a value under a key, silently.
	OpInsert uint8 = 2
	// OpDelete removes a key; the response is one found-byte.
	OpDelete uint8 = 3
	// OpInsertTTL is OpInsert with a leading ttl_ms field.
	OpInsertTTL uint8 = 4
	// OpGetStr is OpLookup with a variable-length string key.
	OpGetStr uint8 = 5
	// OpSetStr is OpInsertTTL with a variable-length string key.
	OpSetStr uint8 = 6
	// OpDelStr is OpDelete with a variable-length string key.
	OpDelStr uint8 = 7
	// OpScan iterates live entries of a slot set, cursor-based.
	OpScan uint8 = 8
	// OpPurge removes live entries of a slot set, cursor-based.
	OpPurge uint8 = 9
	// OpCas stores iff the entry's version matches Ver.
	OpCas uint8 = 10
	// OpAdd stores iff the key is absent.
	OpAdd uint8 = 11
	// OpReplace stores iff the key is present.
	OpReplace uint8 = 12
	// OpAppend concatenates after the existing value.
	OpAppend uint8 = 13
	// OpPrepend concatenates before the existing value.
	OpPrepend uint8 = 14
	// OpIncr adds Delta to the decimal value.
	OpIncr uint8 = 15
	// OpDecr subtracts Delta from the decimal value (floors at 0).
	OpDecr uint8 = 16
	// OpTouch updates the entry's expiry in place.
	OpTouch uint8 = 17
	// OpGets is OpLookup that also returns the entry version.
	OpGets uint8 = 18
	// OpCasStr..OpGetsStr are the string-key variants of ops 10–18.
	OpCasStr     uint8 = 19
	OpAddStr     uint8 = 20
	OpReplaceStr uint8 = 21
	OpAppendStr  uint8 = 22
	OpPrependStr uint8 = 23
	OpIncrStr    uint8 = 24
	OpDecrStr    uint8 = 25
	OpTouchStr   uint8 = 26
	OpGetsStr    uint8 = 27
	// OpInsertVer is OpInsertTTL with an explicit entry version, silent;
	// the replay primitive that preserves CAS versions across migration.
	OpInsertVer uint8 = 28
)

// Version is the highest protocol version this package speaks.
const Version = 4

// OpVersion returns the protocol version that introduced op, or 0 for an
// unknown opcode.
func OpVersion(op uint8) int {
	switch op {
	case OpLookup, OpInsert:
		return 1
	case OpDelete, OpInsertTTL, OpGetStr, OpSetStr, OpDelStr:
		return 2
	case OpScan, OpPurge:
		return 3
	default:
		if op >= OpCas && op <= OpInsertVer {
			return 4
		}
		return 0
	}
}

// RMW response status codes — the wire form of partition.RMWStatus, and
// numerically identical to it (kvserver asserts the equality).
const (
	RMWStatusStored    uint8 = 1 // mutation applied
	RMWStatusNotStored uint8 = 2 // add on present / replace|append|prepend on absent
	RMWStatusExists    uint8 = 3 // cas version mismatch
	RMWStatusNotFound  uint8 = 4 // cas/incr/decr/touch on absent key
	RMWStatusBadValue  uint8 = 5 // incr/decr on non-numeric value
	RMWStatusTooLarge  uint8 = 6 // derived value exceeds the size bound
	RMWStatusNoSpace   uint8 = 7 // allocation failed even after eviction
)

// MaxValueSize bounds a value (and therefore a frame); larger sizes are
// treated as protocol errors so a corrupt stream cannot force huge
// allocations.
const MaxValueSize = 16 << 20

// MaxKeyLen bounds a string key. Wire klen is 16-bit, but memcached-class
// traffic never needs more than this and the bound keeps per-request
// allocations small.
const MaxKeyLen = 4 << 10

// maxFixedKey is the largest valid fixed key (60 bits, as in the paper).
const maxFixedKey = 1<<60 - 1

// SlotCount is the size of the continuum the SCAN/PURGE slot bitmap
// indexes. It must equal cluster.Slots; the cluster package asserts the
// equality at compile time.
const SlotCount = 256

// MaxScanBatch bounds the entries in one SCAN response (and the count a
// request may ask for), so a corrupt stream cannot force huge allocations.
const MaxScanBatch = 4096

// ScanDone is the next_cursor value marking a completed SCAN/PURGE
// iteration. It cannot collide with a real cursor: keys are 60-bit and
// servers encode cursors well below 2^64-1.
const ScanDone = ^uint64(0)

// SlotSet is a 256-bit bitmap of continuum slots, the unit SCAN and PURGE
// select entries by.
type SlotSet [SlotCount / 8]byte

// Add marks a slot as selected. Slots outside [0, SlotCount) are ignored.
func (s *SlotSet) Add(slot int) {
	if slot >= 0 && slot < SlotCount {
		s[slot>>3] |= 1 << (slot & 7)
	}
}

// Has reports whether a slot is selected; false outside [0, SlotCount).
func (s *SlotSet) Has(slot int) bool {
	return slot >= 0 && slot < SlotCount && s[slot>>3]&(1<<(slot&7)) != 0
}

// Len counts the selected slots.
func (s *SlotSet) Len() int {
	n := 0
	for _, b := range s {
		n += bits.OnesCount8(b)
	}
	return n
}

// ScanEntry is one live entry streamed by a SCAN response: the fixed
// 60-bit key, the remaining TTL in milliseconds (0 = never expires), the
// entry's CAS version, and the raw stored value bytes.
type ScanEntry struct {
	Key     uint64
	TTL     uint32
	Version uint64
	Value   []byte
}

// Request is one parsed client request.
type Request struct {
	Op     uint8
	Key    uint64  // fixed 60-bit key; unset for string-key ops
	StrKey []byte  // string key for the *_STR ops
	TTL    uint32  // milliseconds; 0 = never expires
	Value  []byte  // stored/concatenated payload for value-carrying ops
	Ver    uint64  // expected version (CAS) or explicit version (INSERT_VER)
	Delta  uint64  // INCR/DECR operand
	Prefix uint8   // opaque value-header bytes APPEND/PREPEND/INCR/DECR preserve
	Slots  SlotSet // slot bitmap for OpScan/OpPurge
	Cursor uint64  // iteration position for OpScan/OpPurge (0 = start)
	Count  uint32  // max entries per OpScan batch (0 = server default)
}

// hasStrKey reports whether op carries a variable-length key.
func hasStrKey(op uint8) bool {
	return op == OpGetStr || op == OpSetStr || op == OpDelStr ||
		(op >= OpCasStr && op <= OpGetsStr)
}

// hasSlots reports whether op carries a slots+cursor+count trailer instead
// of a key.
func hasSlots(op uint8) bool {
	return op == OpScan || op == OpPurge
}

// hasValue reports whether op carries a size+value trailer.
func hasValue(op uint8) bool {
	switch op {
	case OpInsert, OpInsertTTL, OpSetStr, OpInsertVer,
		OpCas, OpAdd, OpReplace, OpAppend, OpPrepend,
		OpCasStr, OpAddStr, OpReplaceStr, OpAppendStr, OpPrependStr:
		return true
	}
	return false
}

// hasTTL reports whether op carries a ttl_ms(4) field.
func hasTTL(op uint8) bool {
	switch op {
	case OpInsertTTL, OpSetStr, OpInsertVer,
		OpCas, OpAdd, OpReplace, OpTouch,
		OpCasStr, OpAddStr, OpReplaceStr, OpTouchStr:
		return true
	}
	return false
}

// hasVer reports whether op carries a ver(8) field.
func hasVer(op uint8) bool {
	return op == OpCas || op == OpCasStr || op == OpInsertVer
}

// hasDelta reports whether op carries a delta(8) field.
func hasDelta(op uint8) bool {
	return op == OpIncr || op == OpDecr || op == OpIncrStr || op == OpDecrStr
}

// hasPrefix reports whether op carries a prefix(1) field.
func hasPrefix(op uint8) bool {
	switch op {
	case OpAppend, OpPrepend, OpIncr, OpDecr,
		OpAppendStr, OpPrependStr, OpIncrStr, OpDecrStr:
		return true
	}
	return false
}

// IsRMW reports whether op is a read-modify-write, i.e. elicits the
// status(1)|ver(8)|num(8) response. GETS and INSERT_VER are not RMWs: the
// former answers like a lookup, the latter is silent.
func IsRMW(op uint8) bool {
	return (op >= OpCas && op <= OpTouch) || (op >= OpCasStr && op <= OpTouchStr)
}

// --- allocation-free wire primitives ---
//
// The helpers below exist so the steady-state request path performs no
// heap allocation at all. Passing a stack scratch array into io.ReadFull
// or Writer.Write makes it escape (the io interfaces may retain it, as
// far as escape analysis can tell), which costs one hidden allocation per
// call — over half the hot path's allocations before this package staged
// integers in the bufio buffers themselves. Writes append into
// w.AvailableBuffer (the writer's own storage) and reads decode in place
// via Peek/Discard, so no scratch memory exists to escape. Similarly,
// SlotSet bitmaps are copied chunk-wise rather than sliced, so a by-value
// Request never gets forced to the heap by `r.Slots[:]`.

// writeUintN appends the n low-order bytes of v (little-endian) to w
// without any intermediate buffer.
func writeUintN(w *bufio.Writer, v uint64, n int) error {
	if w.Available() < n {
		if err := w.Flush(); err != nil {
			return err
		}
		if w.Available() < n {
			// Degenerate writer smaller than one integer: byte at a time.
			for i := 0; i < n; i++ {
				if err := w.WriteByte(byte(v >> (8 * i))); err != nil {
					return err
				}
			}
			return nil
		}
	}
	b := w.AvailableBuffer()[:n]
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, err := w.Write(b)
	return err
}

// writeCopied writes p by staging it through the writer's own buffer, so
// p itself is never handed to the underlying io.Writer. Use it for data
// whose address must not escape (e.g. an array field of a by-value
// request); heap-backed payloads can use w.Write directly.
func writeCopied(w *bufio.Writer, p []byte) error {
	for len(p) > 0 {
		if w.Available() == 0 {
			if err := w.Flush(); err != nil {
				return err
			}
		}
		b := w.AvailableBuffer()
		n := copy(b[:cap(b)], p)
		if _, err := w.Write(b[:n]); err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

// readUintN decodes an n-byte little-endian integer in place (n ≤ 8,
// within bufio's minimum buffer size). Errors mirror io.ReadFull: io.EOF
// with no bytes consumed, io.ErrUnexpectedEOF mid-integer.
func readUintN(r *bufio.Reader, n int) (uint64, error) {
	p, err := r.Peek(n)
	if err != nil {
		if len(p) > 0 && err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(p[i]) << (8 * i)
	}
	_, _ = r.Discard(n)
	return v, nil
}

// readSlots fills a slot bitmap by copying out of the reader's buffer in
// sub-line chunks, so the destination's address never escapes.
func readSlots(r *bufio.Reader, s *SlotSet) error {
	for off := 0; off < len(s); {
		want := len(s) - off
		if want > 8 {
			want = 8
		}
		p, err := r.Peek(want)
		if err != nil {
			return unexpected(err)
		}
		n := copy(s[off:], p)
		_, _ = r.Discard(n)
		off += n
	}
	return nil
}

// emptyBytes backs zero-length StrKey/Value results so decoded requests
// never carry a nil slice for a field that was present on the wire.
var emptyBytes = make([]byte, 0)

// appendReadFull appends n bytes from r to scratch, returning the grown
// scratch and the freshly-read tail (non-nil even for n = 0). On error
// scratch is returned un-grown.
func appendReadFull(r *bufio.Reader, scratch []byte, n int) ([]byte, []byte, error) {
	if n == 0 {
		return scratch, emptyBytes, nil
	}
	start := len(scratch)
	scratch = append(scratch, make([]byte, n)...)
	if _, err := io.ReadFull(r, scratch[start:]); err != nil {
		return scratch[:start], nil, unexpected(err)
	}
	return scratch, scratch[start:len(scratch):len(scratch)], nil
}

// WriteRequest serializes r. The caller flushes the writer when its batch
// is complete (batching is the point of the protocol). The steady-state
// path performs no heap allocation.
func WriteRequest(w *bufio.Writer, r Request) error {
	// Validate the whole frame before buffering any byte of it: a failed
	// call must leave the stream clean for the caller's next request.
	if OpVersion(r.Op) == 0 {
		return fmt.Errorf("protocol: unknown op %d", r.Op)
	}
	if hasStrKey(r.Op) && len(r.StrKey) > MaxKeyLen {
		return fmt.Errorf("protocol: key of %d bytes exceeds maximum %d", len(r.StrKey), MaxKeyLen)
	}
	if hasValue(r.Op) && len(r.Value) > MaxValueSize {
		return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(r.Value), MaxValueSize)
	}
	if hasSlots(r.Op) && r.Count > MaxScanBatch {
		return fmt.Errorf("protocol: scan count %d exceeds maximum %d", r.Count, MaxScanBatch)
	}
	if err := w.WriteByte(r.Op); err != nil {
		return err
	}
	if hasSlots(r.Op) {
		if err := writeCopied(w, r.Slots[:]); err != nil {
			return err
		}
		if err := writeUintN(w, r.Cursor, 8); err != nil {
			return err
		}
		return writeUintN(w, uint64(r.Count), 4)
	}
	if hasStrKey(r.Op) {
		if err := writeUintN(w, uint64(len(r.StrKey)), 2); err != nil {
			return err
		}
		if _, err := w.Write(r.StrKey); err != nil {
			return err
		}
	} else {
		if err := writeUintN(w, r.Key, 8); err != nil {
			return err
		}
	}
	if hasTTL(r.Op) {
		if err := writeUintN(w, uint64(r.TTL), 4); err != nil {
			return err
		}
	}
	if hasVer(r.Op) {
		if err := writeUintN(w, r.Ver, 8); err != nil {
			return err
		}
	}
	if hasDelta(r.Op) {
		if err := writeUintN(w, r.Delta, 8); err != nil {
			return err
		}
	}
	if hasPrefix(r.Op) {
		if err := w.WriteByte(r.Prefix); err != nil {
			return err
		}
	}
	if hasValue(r.Op) {
		if err := writeUintN(w, uint64(len(r.Value)), 4); err != nil {
			return err
		}
		_, err := w.Write(r.Value)
		return err
	}
	return nil
}

// ReadRequest parses one request. The returned StrKey/Value slices are
// fresh copies owned by the caller (they may share one backing array).
// io.EOF is returned cleanly only at a message boundary. Hot paths should
// prefer DecodeRequestInto, which recycles the caller's arena instead of
// allocating per request.
func ReadRequest(r *bufio.Reader) (Request, error) {
	var req Request
	if _, err := DecodeRequestInto(r, &req, nil); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeRequestInto parses one request into *req, appending any
// variable-length bytes (string key and value payload) to scratch;
// req.StrKey and req.Value alias the returned buffer. The returned slice
// is the grown scratch: the caller owns it and may recycle it once the
// request has been fully processed (see the no-retention contract on
// kvserver.Backend.ProcessBatch). A nil scratch allocates a fresh arena
// sized to the frame, which is exactly what ReadRequest does. On error
// *req is undefined, scratch is returned un-grown, and io.EOF is returned
// cleanly only at a message boundary. The steady-state path (scratch
// capacity sufficient) performs no heap allocation.
func DecodeRequestInto(r *bufio.Reader, req *Request, scratch []byte) ([]byte, error) {
	op, err := r.ReadByte()
	if err != nil {
		return scratch, err // io.EOF at boundary is clean shutdown
	}
	if OpVersion(op) == 0 {
		return scratch, fmt.Errorf("protocol: unknown op %d", op)
	}
	*req = Request{Op: op}
	if hasSlots(op) {
		if err := readSlots(r, &req.Slots); err != nil {
			return scratch, err
		}
		cursor, err := readUintN(r, 8)
		if err != nil {
			return scratch, unexpected(err)
		}
		req.Cursor = cursor
		count, err := readUintN(r, 4)
		if err != nil {
			return scratch, unexpected(err)
		}
		req.Count = uint32(count)
		if req.Count > MaxScanBatch {
			return scratch, fmt.Errorf("protocol: scan count %d exceeds maximum %d", req.Count, MaxScanBatch)
		}
		return scratch, nil
	}
	// mark restores scratch's length on any failure after bytes were
	// appended, honoring the un-grown-on-error contract (the backing
	// array may still have been reallocated by a successful grow).
	mark := len(scratch)
	if hasStrKey(op) {
		klen, err := readUintN(r, 2)
		if err != nil {
			return scratch, unexpected(err)
		}
		if klen > MaxKeyLen {
			return scratch, fmt.Errorf("protocol: key length %d exceeds maximum %d", klen, MaxKeyLen)
		}
		if scratch, req.StrKey, err = appendReadFull(r, scratch, int(klen)); err != nil {
			return scratch[:mark], err
		}
	} else {
		key, err := readUintN(r, 8)
		if err != nil {
			return scratch, unexpected(err)
		}
		req.Key = key
	}
	if hasTTL(op) {
		ttl, err := readUintN(r, 4)
		if err != nil {
			return scratch[:mark], unexpected(err)
		}
		req.TTL = uint32(ttl)
	}
	if hasVer(op) {
		ver, err := readUintN(r, 8)
		if err != nil {
			return scratch[:mark], unexpected(err)
		}
		req.Ver = ver
	}
	if hasDelta(op) {
		delta, err := readUintN(r, 8)
		if err != nil {
			return scratch[:mark], unexpected(err)
		}
		req.Delta = delta
	}
	if hasPrefix(op) {
		pfx, err := r.ReadByte()
		if err != nil {
			return scratch[:mark], unexpected(err)
		}
		req.Prefix = pfx
	}
	if hasValue(op) {
		size, err := readUintN(r, 4)
		if err != nil {
			return scratch[:mark], unexpected(err)
		}
		if size > MaxValueSize {
			return scratch[:mark], fmt.Errorf("protocol: value size %d exceeds maximum %d", size, MaxValueSize)
		}
		if scratch, req.Value, err = appendReadFull(r, scratch, int(size)); err != nil {
			return scratch[:mark], err
		}
	}
	return scratch, nil
}

// WriteLookupResponse serializes a LOOKUP/GET_STR response; found=false
// (or an empty value with found=true) is indistinguishable on the wire, as
// in the paper: "a size field of zero". It performs no heap allocation.
func WriteLookupResponse(w *bufio.Writer, value []byte, found bool) error {
	if !found {
		return writeUintN(w, 0, 4)
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(value), MaxValueSize)
	}
	if err := writeUintN(w, uint64(len(value)), 4); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

// ReadLookupResponse parses one LOOKUP/GET_STR response, appending the
// value to dst. found is false for a zero-size response. With sufficient
// dst capacity it performs no heap allocation.
func ReadLookupResponse(r *bufio.Reader, dst []byte) (out []byte, found bool, err error) {
	size, err := readUintN(r, 4)
	if err != nil {
		return dst, false, err
	}
	if size == 0 {
		return dst, false, nil
	}
	if size > MaxValueSize {
		return dst, false, fmt.Errorf("protocol: response size %d exceeds maximum %d", size, MaxValueSize)
	}
	n := len(dst)
	dst = append(dst, make([]byte, size)...)
	if _, err := io.ReadFull(r, dst[n:]); err != nil {
		return dst[:n], false, unexpected(err)
	}
	return dst, true, nil
}

// WriteDeleteResponse serializes a DELETE/DEL_STR response: one byte,
// nonzero when the key existed.
func WriteDeleteResponse(w *bufio.Writer, found bool) error {
	b := byte(0)
	if found {
		b = 1
	}
	return w.WriteByte(b)
}

// ReadDeleteResponse parses one DELETE/DEL_STR response.
func ReadDeleteResponse(r *bufio.Reader) (found bool, err error) {
	b, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

// WriteScanResponse serializes one SCAN response batch. next is the cursor
// the client resumes at (ScanDone once iteration is complete); entries may
// be empty even mid-iteration (the server bounds work per round trip).
func WriteScanResponse(w *bufio.Writer, next uint64, entries []ScanEntry) error {
	if len(entries) > MaxScanBatch {
		return fmt.Errorf("protocol: scan batch of %d entries exceeds maximum %d", len(entries), MaxScanBatch)
	}
	for _, e := range entries {
		if len(e.Value) > MaxValueSize {
			return fmt.Errorf("protocol: scan value of %d bytes exceeds maximum %d", len(e.Value), MaxValueSize)
		}
	}
	if err := writeUintN(w, next, 8); err != nil {
		return err
	}
	if err := writeUintN(w, uint64(len(entries)), 4); err != nil {
		return err
	}
	for _, e := range entries {
		if err := writeUintN(w, e.Key, 8); err != nil {
			return err
		}
		if err := writeUintN(w, uint64(e.TTL), 4); err != nil {
			return err
		}
		if err := writeUintN(w, e.Version, 8); err != nil {
			return err
		}
		if err := writeUintN(w, uint64(len(e.Value)), 4); err != nil {
			return err
		}
		if _, err := w.Write(e.Value); err != nil {
			return err
		}
	}
	return nil
}

// ReadScanResponse parses one SCAN response batch, appending entries to
// dst. Entry values are fresh copies owned by the caller (they may share
// backing arrays). Truncated or oversized frames are reported as errors,
// never panics. Hot paths should prefer ReadScanResponseInto, which
// recycles a caller-owned arena.
func ReadScanResponse(r *bufio.Reader, dst []ScanEntry) (next uint64, out []ScanEntry, err error) {
	next, out, _, err = ReadScanResponseInto(r, dst, nil)
	return next, out, err
}

// ReadScanResponseInto parses one SCAN response batch, appending entries
// to dst and their value bytes to scratch. Entry values alias the arena
// (or, when growth reallocated it mid-batch, a predecessor array whose
// bytes remain valid); the caller owns both slices and may recycle
// scratch once it is done with every entry of the batch. A nil scratch
// allocates a fresh arena. With sufficient capacity in dst and scratch it
// performs no heap allocation.
func ReadScanResponseInto(r *bufio.Reader, dst []ScanEntry, scratch []byte) (next uint64, out []ScanEntry, outScratch []byte, err error) {
	next, err = readUintN(r, 8)
	if err != nil {
		return 0, dst, scratch, err
	}
	n, err := readUintN(r, 4)
	if err != nil {
		return 0, dst, scratch, unexpected(err)
	}
	if n > MaxScanBatch {
		return 0, dst, scratch, fmt.Errorf("protocol: scan batch of %d entries exceeds maximum %d", n, MaxScanBatch)
	}
	mark := len(dst)
	for i := uint64(0); i < n; i++ {
		var e ScanEntry
		key, err := readUintN(r, 8)
		if err != nil {
			return 0, dst[:mark], scratch, unexpected(err)
		}
		e.Key = key
		ttl, err := readUintN(r, 4)
		if err != nil {
			return 0, dst[:mark], scratch, unexpected(err)
		}
		e.TTL = uint32(ttl)
		ver, err := readUintN(r, 8)
		if err != nil {
			return 0, dst[:mark], scratch, unexpected(err)
		}
		e.Version = ver
		size, err := readUintN(r, 4)
		if err != nil {
			return 0, dst[:mark], scratch, unexpected(err)
		}
		if size > MaxValueSize {
			return 0, dst[:mark], scratch, fmt.Errorf("protocol: scan value size %d exceeds maximum %d", size, MaxValueSize)
		}
		if scratch, e.Value, err = appendReadFull(r, scratch, int(size)); err != nil {
			return 0, dst[:mark], scratch, err
		}
		dst = append(dst, e)
	}
	return next, dst, scratch, nil
}

// WriteRMWResponse serializes one read-modify-write response:
// status(1) | ver(8) | num(8). It performs no heap allocation.
func WriteRMWResponse(w *bufio.Writer, status uint8, ver, num uint64) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := writeUintN(w, ver, 8); err != nil {
		return err
	}
	return writeUintN(w, num, 8)
}

// ReadRMWResponse parses one read-modify-write response.
func ReadRMWResponse(r *bufio.Reader) (status uint8, ver, num uint64, err error) {
	status, err = r.ReadByte()
	if err != nil {
		return 0, 0, 0, err
	}
	if status < RMWStatusStored || status > RMWStatusNoSpace {
		return 0, 0, 0, fmt.Errorf("protocol: unknown rmw status %d", status)
	}
	if ver, err = readUintN(r, 8); err != nil {
		return 0, 0, 0, unexpected(err)
	}
	if num, err = readUintN(r, 8); err != nil {
		return 0, 0, 0, unexpected(err)
	}
	return status, ver, num, nil
}

// WriteGetsResponse serializes a GETS response: found(1) | ver(8) |
// size(4) | value(size). Unlike LOOKUP, found travels explicitly so an
// empty value keeps its version. It performs no heap allocation.
func WriteGetsResponse(w *bufio.Writer, value []byte, ver uint64, found bool) error {
	if !found {
		if err := w.WriteByte(0); err != nil {
			return err
		}
		if err := writeUintN(w, 0, 8); err != nil {
			return err
		}
		return writeUintN(w, 0, 4)
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("protocol: value of %d bytes exceeds maximum %d", len(value), MaxValueSize)
	}
	if err := w.WriteByte(1); err != nil {
		return err
	}
	if err := writeUintN(w, ver, 8); err != nil {
		return err
	}
	if err := writeUintN(w, uint64(len(value)), 4); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

// ReadGetsResponseInto parses one GETS response, appending the value to
// dst. With sufficient dst capacity it performs no heap allocation; on
// error dst is returned un-grown.
func ReadGetsResponseInto(r *bufio.Reader, dst []byte) (out []byte, ver uint64, found bool, err error) {
	fb, err := r.ReadByte()
	if err != nil {
		return dst, 0, false, err
	}
	if ver, err = readUintN(r, 8); err != nil {
		return dst, 0, false, unexpected(err)
	}
	size, err := readUintN(r, 4)
	if err != nil {
		return dst, 0, false, unexpected(err)
	}
	if size > MaxValueSize {
		return dst, 0, false, fmt.Errorf("protocol: response size %d exceeds maximum %d", size, MaxValueSize)
	}
	n := len(dst)
	dst = append(dst, make([]byte, size)...)
	if _, err := io.ReadFull(r, dst[n:]); err != nil {
		return dst[:n], 0, false, unexpected(err)
	}
	return dst, ver, fb != 0, nil
}

// WritePurgeResponse serializes one PURGE response: the resume cursor
// (ScanDone once complete) and how many entries this batch removed.
func WritePurgeResponse(w *bufio.Writer, next uint64, removed uint32) error {
	if err := writeUintN(w, next, 8); err != nil {
		return err
	}
	return writeUintN(w, uint64(removed), 4)
}

// ReadPurgeResponse parses one PURGE response.
func ReadPurgeResponse(r *bufio.Reader) (next uint64, removed uint32, err error) {
	next, err = readUintN(r, 8)
	if err != nil {
		return 0, 0, err
	}
	rm, err := readUintN(r, 4)
	if err != nil {
		return 0, 0, unexpected(err)
	}
	return next, uint32(rm), nil
}

// unexpected converts a mid-frame EOF into io.ErrUnexpectedEOF so callers
// can distinguish clean shutdown from truncation.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- string-key routing (the paper's §8.2 extension) ---
//
// A string key is hashed onto the fixed 60-bit key space; the stored
// value embeds the key string so a 60-bit collision is detected at read
// time and reported as a miss (cache semantics make that correct). The
// same framing is used by the client-side StringTable and the server-side
// GET_STR/SET_STR handlers, so entries written through either surface are
// readable through the other.

// HashStringKey maps a string key onto the 60-bit fixed key space
// (FNV-1a, masked).
func HashStringKey(key []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return h.Sum64() & maxFixedKey
}

// AppendStringEntry appends the stored-entry encoding of (key, value) —
// klen(4) | key | value — to dst and returns the extended slice. The
// canonical implementation lives in internal/partition (the RMW engine
// must re-frame entries and cannot import this package).
func AppendStringEntry(dst, key, value []byte) []byte {
	return partition.AppendStringEntry(dst, key, value)
}

// CutStringEntry splits a stored entry, returning the embedded value if
// the embedded key matches key. A mismatch — a 60-bit hash collision or a
// corrupt entry — reports ok=false, which callers treat as a miss.
func CutStringEntry(raw, key []byte) (value []byte, ok bool) {
	return partition.CutStringEntry(raw, key)
}
