package protocol

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, req); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Flush()
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestLookupRoundTrip(t *testing.T) {
	got := roundTripRequest(t, Request{Op: OpLookup, Key: 0xDEADBEEF})
	if got.Op != OpLookup || got.Key != 0xDEADBEEF || got.Value != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestInsertRoundTrip(t *testing.T) {
	got := roundTripRequest(t, Request{Op: OpInsert, Key: 7, Value: []byte("payload")})
	if got.Op != OpInsert || got.Key != 7 || string(got.Value) != "payload" {
		t.Fatalf("got %+v", got)
	}
}

func TestInsertEmptyValue(t *testing.T) {
	got := roundTripRequest(t, Request{Op: OpInsert, Key: 9, Value: []byte{}})
	if got.Op != OpInsert || len(got.Value) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(key uint64, val []byte, lookup bool) bool {
		req := Request{Op: OpInsert, Key: key, Value: val}
		if lookup {
			req = Request{Op: OpLookup, Key: key}
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteRequest(w, req); err != nil {
			return false
		}
		w.Flush()
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil || got.Op != req.Op || got.Key != req.Key {
			return false
		}
		return bytes.Equal(got.Value, req.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchOfRequests(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	reqs := []Request{
		{Op: OpLookup, Key: 1},
		{Op: OpInsert, Key: 2, Value: []byte("two")},
		{Op: OpLookup, Key: 3},
		{Op: OpInsert, Key: 4, Value: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range reqs {
		if err := WriteRequest(w, r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	for i, want := range reqs {
		got, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if got.Op != want.Op || got.Key != want.Key || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("req %d mismatch", i)
		}
	}
	if _, err := ReadRequest(r); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteLookupResponse(w, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	if err := WriteLookupResponse(w, nil, false); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	v, found, err := ReadLookupResponse(r, []byte("pre-"))
	if err != nil || !found || string(v) != "pre-hello" {
		t.Fatalf("first response: %q %v %v", v, found, err)
	}
	v, found, err = ReadLookupResponse(r, nil)
	if err != nil || found || len(v) != 0 {
		t.Fatalf("miss response: %q %v %v", v, found, err)
	}
}

func TestTruncatedStreamErrors(t *testing.T) {
	// A request cut mid-key must be ErrUnexpectedEOF, not clean EOF.
	full := func() []byte {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		WriteRequest(w, Request{Op: OpInsert, Key: 1, Value: []byte("abcdef")})
		w.Flush()
		return buf.Bytes()
	}()
	for cut := 1; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, err := ReadRequest(r); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestBadOpRejected(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader(append([]byte{99}, make([]byte, 12)...)))
	if _, err := ReadRequest(r); err == nil {
		t.Fatal("unknown op accepted")
	}
	var buf bytes.Buffer
	if err := WriteRequest(bufio.NewWriter(&buf), Request{Op: 99}); err == nil {
		t.Fatal("unknown op written")
	}
}

func TestOversizeRejected(t *testing.T) {
	// Writer-side guard.
	var sink bytes.Buffer
	w := bufio.NewWriter(&sink)
	big := make([]byte, MaxValueSize+1)
	if err := WriteRequest(w, Request{Op: OpInsert, Key: 1, Value: big}); err == nil {
		t.Fatal("oversize insert written")
	}
	if err := WriteLookupResponse(w, big, true); err == nil {
		t.Fatal("oversize response written")
	}
	// Reader-side guard: forge a huge declared size.
	var buf bytes.Buffer
	buf.WriteByte(OpInsert)
	buf.Write(make([]byte, 8))
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversize declared size accepted")
	}
}

func BenchmarkRequestRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	r := bufio.NewReader(&buf)
	req := Request{Op: OpInsert, Key: 12345, Value: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		WriteRequest(w, req)
		w.Flush()
		ReadRequest(r)
	}
}
