//go:build race

package protocol

// raceEnabled reports that the race detector is active; its
// instrumentation allocates, so allocation-count pins are skipped.
const raceEnabled = true
