package protocol

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestSlotSet(t *testing.T) {
	var s SlotSet
	if s.Len() != 0 {
		t.Fatalf("empty set Len = %d", s.Len())
	}
	for _, slot := range []int{0, 7, 8, 63, 200, 255} {
		s.Add(slot)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	for _, slot := range []int{0, 7, 8, 63, 200, 255} {
		if !s.Has(slot) {
			t.Errorf("Has(%d) = false", slot)
		}
	}
	for _, slot := range []int{1, 9, 64, 199, 254} {
		if s.Has(slot) {
			t.Errorf("Has(%d) = true", slot)
		}
	}
	// Out-of-range slots are ignored, not a panic or a wrap-around.
	s.Add(-1)
	s.Add(256)
	s.Add(1 << 20)
	if s.Len() != 6 || s.Has(-1) || s.Has(256) {
		t.Fatal("out-of-range slots must be ignored")
	}
}

func TestScanRequestRoundTrip(t *testing.T) {
	var slots SlotSet
	slots.Add(3)
	slots.Add(250)
	reqs := []Request{
		{Op: OpScan, Slots: slots, Cursor: 0, Count: 0},
		{Op: OpScan, Slots: slots, Cursor: 1<<48 | 42, Count: MaxScanBatch},
		{Op: OpPurge, Slots: slots, Cursor: 99, Count: 7},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, r := range reqs {
		if err := WriteRequest(w, r); err != nil {
			t.Fatalf("WriteRequest(%+v): %v", r, err)
		}
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	for i, want := range reqs {
		got, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("ReadRequest %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(r); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestScanRequestCountBound(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	err := WriteRequest(w, Request{Op: OpScan, Count: MaxScanBatch + 1})
	if err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("oversized count write: %v", err)
	}
}

func TestScanResponseRoundTrip(t *testing.T) {
	entries := []ScanEntry{
		{Key: 1, TTL: 0, Value: []byte("hello")},
		{Key: 1<<60 - 1, TTL: 1500, Value: nil},
		{Key: 42, TTL: 1, Value: bytes.Repeat([]byte{0xab}, 300)},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteScanResponse(w, 77, entries); err != nil {
		t.Fatal(err)
	}
	if err := WriteScanResponse(w, ScanDone, nil); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	next, got, err := ReadScanResponse(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next != 77 {
		t.Fatalf("next = %d, want 77", next)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].Key != entries[i].Key || got[i].TTL != entries[i].TTL ||
			!bytes.Equal(got[i].Value, entries[i].Value) {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], entries[i])
		}
	}
	next, got, err = ReadScanResponse(r, got[:0])
	if err != nil {
		t.Fatal(err)
	}
	if next != ScanDone || len(got) != 0 {
		t.Fatalf("final batch: next=%d entries=%d", next, len(got))
	}
}

func TestScanResponseTruncated(t *testing.T) {
	entries := []ScanEntry{{Key: 9, TTL: 3, Value: []byte("abcdefgh")}}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteScanResponse(w, 5, entries); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Every strict prefix (except the empty one, a clean EOF boundary)
	// must fail with an error, never a panic or a silent success.
	for cut := 1; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := ReadScanResponse(r, nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed cleanly", cut, len(full))
		}
	}
}

func TestScanResponseOversizedRejected(t *testing.T) {
	// Hand-craft an entry count over MaxScanBatch.
	raw := make([]byte, 12)
	raw[8] = 0xff
	raw[9] = 0xff
	raw[10] = 0xff
	raw[11] = 0x7f
	if _, _, err := ReadScanResponse(bufio.NewReader(bytes.NewReader(raw)), nil); err == nil {
		t.Fatal("oversized entry count parsed cleanly")
	}
	// And a value size over MaxValueSize.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	WriteScanResponse(w, 0, nil)
	w.Flush()
	raw = buf.Bytes()
	raw[8] = 1 // one entry...
	raw = append(raw, make([]byte, 8)...)
	raw = append(raw, 0, 0, 0, 0)             // ttl
	raw = append(raw, 0xff, 0xff, 0xff, 0xff) // ...with a 4 GiB value
	if _, _, err := ReadScanResponse(bufio.NewReader(bytes.NewReader(raw)), nil); err == nil {
		t.Fatal("oversized value size parsed cleanly")
	}
}

func TestPurgeResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WritePurgeResponse(w, 12345, 678); err != nil {
		t.Fatal(err)
	}
	if err := WritePurgeResponse(w, ScanDone, 0); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	next, removed, err := ReadPurgeResponse(r)
	if err != nil || next != 12345 || removed != 678 {
		t.Fatalf("got (%d, %d, %v)", next, removed, err)
	}
	next, removed, err = ReadPurgeResponse(r)
	if err != nil || next != ScanDone || removed != 0 {
		t.Fatalf("got (%d, %d, %v)", next, removed, err)
	}
}
