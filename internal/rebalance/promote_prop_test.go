package rebalance

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/detect"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
	"cphash/internal/replica"
)

// replStack is one fully replicated member: table + durability pipeline +
// replication source + serving front end — the same stack cmd/cpserver
// assembles per instance with -replicas 2.
type replStack struct {
	srv   *kvserver.Server
	table *lockhash.Table
	pipe  *persist.Pipeline
	src   *replica.Source
	addr  string
}

func startReplStack(t *testing.T) *replStack {
	t.Helper()
	pipe, err := persist.Open(persist.Config{
		Dir:     t.TempDir(),
		Policy:  persist.SyncNone,
		Streams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    8,
		CapacityBytes: 8 << 20,
		Sink:          func(i int) partition.ChangeSink { return pipe.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SetSource(persist.LockHashSource(table))
	if _, err := persist.RestoreLockHash(pipe, table); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Pipe:      pipe,
		Addr:      "127.0.0.1:0",
		Heartbeat: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:        "127.0.0.1:0",
		Workers:     2,
		NewBackend:  kvserver.NewLockHashBackend(table),
		Persist:     pipe,
		Replication: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) // closes replication and persistence too
	return &replStack{srv: srv, table: table, pipe: pipe, src: src, addr: srv.Addr()}
}

// wireMesh builds the links cmd/cpserver's rewire would: for every slot,
// the slot's standby follows the slot's owner for exactly that slot set.
// Returned as links[followerAddr][ownerAddr].
func wireMesh(t *testing.T, ring *cluster.Ring, stacks map[string]*replStack) map[string]map[string]*replica.Follower {
	t.Helper()
	want := map[string]map[string]*protocol.SlotSet{}
	for s := 0; s < protocol.SlotCount; s++ {
		owner, standby := ring.Owner(s), ring.Standby(s)
		if owner == "" || standby == "" {
			continue
		}
		byOwner := want[standby]
		if byOwner == nil {
			byOwner = map[string]*protocol.SlotSet{}
			want[standby] = byOwner
		}
		set := byOwner[owner]
		if set == nil {
			set = &protocol.SlotSet{}
			byOwner[owner] = set
		}
		set.Add(s)
	}
	links := map[string]map[string]*replica.Follower{}
	for follower, byOwner := range want {
		links[follower] = map[string]*replica.Follower{}
		for owner, set := range byOwner {
			f, err := replica.StartFollower(replica.FollowerConfig{
				Source:  stacks[owner].src.Addr(),
				Name:    follower,
				Slots:   set,
				Apply:   replica.NewLockHashApplier(stacks[follower].table),
				Backoff: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(f.Close)
			links[follower][owner] = f
		}
	}
	return links
}

// waitMeshSynced blocks until every source reports all its peers synced
// with the tail watermark acknowledged.
func waitMeshSynced(t *testing.T, stacks map[string]*replStack, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for _, st := range stacks {
		for {
			tail := st.src.Tail()
			peers := st.src.Status()
			ok := len(peers) > 0
			for _, ps := range peers {
				if !ps.Synced || ps.Acked < tail {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mesh did not sync: %s tail=%d peers=%+v", st.addr, tail, peers)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// keyState tracks one key's write history. Each key belongs to exactly
// one writer goroutine, so versions are strictly sequential and the
// fields need no locking (the final read happens after wg.Wait).
type keyState struct {
	confirmed uint64 // highest version whose read-back succeeded
	attempted uint64 // highest version ever sent
}

// TestPromotionInvariantsUnderLoad is the promotion property test: live
// writers hammer a 3-member replicated cluster, one member dies at a
// random point, and the standby is promoted while traffic continues.
// Invariants checked afterwards:
//
//   - zero acked-write loss: every write whose read-back succeeded is
//     still present with that version or a later one the same writer sent
//     (the graceful shutdown drains the source's backlog to its synced
//     followers before the watermark-gated window closes);
//   - no phantoms: no key holds a version newer than its writer ever
//     sent, and no value bleeds across keys;
//   - routing settles: the dead member leaves the ring with no windows
//     left open and exactly one promotion counted, no entries streamed;
//   - surviving links stay fresh: heartbeats keep follower staleness
//     bounded on the post-promotion topology.
//
// A write that was sent but never confirmed may land or vanish — that is
// the documented asynchronous-replication contract — so those keys are
// only checked for version sanity, not presence.
func TestPromotionInvariantsUnderLoad(t *testing.T) {
	const (
		nodes         = 3
		writers       = 3
		keysPerWriter = 300
	)
	rng := rand.New(rand.NewSource(42))

	stacks := map[string]*replStack{}
	addrs := make([]string, nodes)
	for i := range addrs {
		st := startReplStack(t)
		stacks[st.addr] = st
		addrs[i] = st.addr
	}
	c, err := client.New(client.Config{Nodes: addrs, DownBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	links := wireMesh(t, c.Ring(), stacks)
	waitMeshSynced(t, stacks, 10*time.Second)

	// Live traffic: each writer owns a disjoint key range and bumps
	// per-key versions; a write counts as acked only once its read-back
	// returns the exact value (processed, not merely mailed). Errors are
	// expected while the victim is down and are simply not confirmed.
	states := make([]keyState, writers*keysPerWriter)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := uint64(w*keysPerWriter + wrng.Intn(keysPerWriter))
				st := &states[k]
				ver := st.attempted + 1
				st.attempted = ver
				val := []byte(fmt.Sprintf("%d:%d", k, ver))
				var err error
				if ver%7 == 0 {
					err = c.SetTTL(k, val, time.Hour)
				} else {
					err = c.Set(k, val)
				}
				if err != nil {
					continue
				}
				if v, found, gerr := c.Get(k); gerr == nil && found && bytes.Equal(v, val) {
					st.confirmed = ver
				}
			}
		}(w, rng.Int63())
	}

	time.Sleep(time.Duration(100+rng.Intn(150)) * time.Millisecond)

	// Kill a random member mid-traffic. Its own follower links come down
	// first (nothing must apply into a table whose pipeline is closing),
	// then the graceful close: fence, barrier, drain the source to its
	// followers, close the pipeline.
	victim := addrs[rng.Intn(nodes)]
	for owner, f := range links[victim] {
		f.Close()
		delete(links[victim], owner)
	}
	stacks[victim].srv.Close()

	err = m.Promote(victim, func(newOwner string, slots []int) error {
		f := links[newOwner][victim]
		if f == nil {
			return fmt.Errorf("no replication link %s <- %s", newOwner, victim)
		}
		if !f.WaitDisconnected(10 * time.Second) {
			return fmt.Errorf("link %s <- %s did not drain", newOwner, victim)
		}
		f.Close()
		delete(links[newOwner], victim)
		return nil
	})
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// Let traffic run on the promoted topology before stopping.
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if c.Ring().Contains(victim) {
		t.Fatal("dead member still in the ring")
	}
	if n := c.MigratingSlots(); n != 0 {
		t.Fatalf("windows still open after promotion: %d", n)
	}
	if st := m.Stats(); st.Promotions != 1 || st.Entries != 0 {
		t.Fatalf("stats after promotion: %+v (want Promotions=1, Entries=0)", st)
	}

	var lost, stale, phantom int
	for k := range states {
		st := &states[k]
		if st.attempted == 0 {
			continue
		}
		v, found, err := c.Get(uint64(k))
		if err != nil {
			t.Fatalf("Get(%d) after promotion: %v", k, err)
		}
		if !found {
			if st.confirmed > 0 {
				lost++
				if lost <= 5 {
					t.Errorf("key %d: confirmed v%d lost entirely", k, st.confirmed)
				}
			}
			continue
		}
		var gotKey, gotVer uint64
		if _, err := fmt.Sscanf(string(v), "%d:%d", &gotKey, &gotVer); err != nil || gotKey != uint64(k) {
			t.Fatalf("key %d: corrupt or cross-key value %q", k, v)
		}
		if gotVer < st.confirmed {
			stale++
			if stale <= 5 {
				t.Errorf("key %d: holds v%d, older than confirmed v%d", k, gotVer, st.confirmed)
			}
		}
		if gotVer > st.attempted {
			phantom++
			if phantom <= 5 {
				t.Errorf("key %d: phantom v%d beyond attempted v%d", k, gotVer, st.attempted)
			}
		}
	}
	if lost+stale+phantom > 0 {
		t.Fatalf("promotion invariants violated: %d lost, %d stale, %d phantom", lost, stale, phantom)
	}

	// Surviving links (both endpoints alive) must stay heartbeat-fresh
	// even though their slot subscriptions predate the promotion.
	for follower, byOwner := range links {
		if follower == victim {
			continue
		}
		for owner, f := range byOwner {
			if owner == victim {
				continue
			}
			if d, ok := f.Staleness(); !ok || d > 2*time.Second {
				t.Errorf("link %s <- %s staleness %v ok=%v, want fresh", follower, owner, d, ok)
			}
		}
	}
}

// meshCtl owns the depth-N test mesh the way cpserver's admin owns its
// links: rewire reconciles follower links against a ring snapshot,
// keeping exact (follower, owner, slots) matches and resyncing only the
// edges that changed — the standby-of-standby path after a promotion.
type meshCtl struct {
	t      *testing.T
	depth  int
	stacks map[string]*replStack

	mu    sync.Mutex
	alive map[string]bool
	links map[string]map[string]*replica.Follower
	sets  map[string]map[string]protocol.SlotSet
}

func newMeshCtl(t *testing.T, stacks map[string]*replStack, depth int) *meshCtl {
	mc := &meshCtl{
		t:      t,
		depth:  depth,
		stacks: stacks,
		alive:  map[string]bool{},
		links:  map[string]map[string]*replica.Follower{},
		sets:   map[string]map[string]protocol.SlotSet{},
	}
	for addr := range stacks {
		mc.alive[addr] = true
	}
	t.Cleanup(func() {
		mc.mu.Lock()
		defer mc.mu.Unlock()
		for _, byOwner := range mc.links {
			for _, f := range byOwner {
				f.Close()
			}
		}
	})
	return mc
}

// rewire diffs the live mesh against the ring: every slot's owner feeds
// its ranks 1..depth-1 directly (the rank-shift identity makes each the
// slot's next owner in removal order).
func (mc *meshCtl) rewire(ring *cluster.Ring) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	want := map[string]map[string]*protocol.SlotSet{}
	for s := 0; s < protocol.SlotCount; s++ {
		owner := ring.Owner(s)
		if !mc.alive[owner] {
			continue
		}
		for _, standby := range ring.Replicas(s, mc.depth) {
			if !mc.alive[standby] {
				continue
			}
			byOwner := want[standby]
			if byOwner == nil {
				byOwner = map[string]*protocol.SlotSet{}
				want[standby] = byOwner
			}
			set := byOwner[owner]
			if set == nil {
				set = &protocol.SlotSet{}
				byOwner[owner] = set
			}
			set.Add(s)
		}
	}
	for follower, byOwner := range mc.links {
		for owner, f := range byOwner {
			var w *protocol.SlotSet
			if m := want[follower]; m != nil {
				w = m[owner]
			}
			if w != nil && *w == mc.sets[follower][owner] {
				continue // unchanged: the synced session survives
			}
			f.Close()
			delete(byOwner, owner)
			delete(mc.sets[follower], owner)
		}
	}
	for follower, byOwner := range want {
		for owner, set := range byOwner {
			if mc.links[follower][owner] != nil {
				continue
			}
			f, err := replica.StartFollower(replica.FollowerConfig{
				Source:  mc.stacks[owner].src.Addr(),
				Name:    follower,
				Slots:   set,
				Apply:   replica.NewLockHashApplier(mc.stacks[follower].table),
				Backoff: 10 * time.Millisecond,
			})
			if err != nil {
				mc.t.Errorf("start link %s <- %s: %v", follower, owner, err)
				continue
			}
			if mc.links[follower] == nil {
				mc.links[follower] = map[string]*replica.Follower{}
				mc.sets[follower] = map[string]protocol.SlotSet{}
			}
			mc.links[follower][owner] = f
			mc.sets[follower][owner] = *set
		}
	}
}

// dropFollower closes every link in which addr follows someone (called
// before stopping addr, so nothing feeds its applier).
func (mc *meshCtl) dropFollower(addr string) {
	mc.mu.Lock()
	byOwner := mc.links[addr]
	delete(mc.links, addr)
	delete(mc.sets, addr)
	mc.mu.Unlock()
	for _, f := range byOwner {
		f.Close()
	}
}

// takeLink removes and returns the link follower <- owner (nil if gone).
func (mc *meshCtl) takeLink(follower, owner string) *replica.Follower {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	byOwner := mc.links[follower]
	f := byOwner[owner]
	delete(byOwner, owner)
	if s := mc.sets[follower]; s != nil {
		delete(s, owner)
	}
	return f
}

func (mc *meshCtl) setDead(addr string) {
	mc.mu.Lock()
	mc.alive[addr] = false
	mc.mu.Unlock()
}

// TestPromotionInvariantsDepth3DoubleFailure is the depth-3 chain
// property test: live writers hammer a 3-member cluster replicated at
// -replicas 3 (every slot on all three members), the primary of some
// slots is killed, and — while the new primary is still resyncing its
// own standby — that rank-1 standby is killed too. Both failovers are
// fired by the failure detector (internal/detect), never by a manual
// promote. Invariants:
//
//   - zero acked-write loss across BOTH failures: every read-back
//     confirmed write is on the last surviving member;
//   - no phantoms, no cross-key bleed, no stale versions;
//   - auto-promotion converges: exactly two promotions, zero entries
//     streamed (ownership flips, never data moves), no open windows,
//     both corpses out of the ring and out of the detector's watch set.
func TestPromotionInvariantsDepth3DoubleFailure(t *testing.T) {
	const (
		nodes         = 3
		depth         = 3
		writers       = 3
		keysPerWriter = 250
	)
	rng := rand.New(rand.NewSource(77))

	stacks := map[string]*replStack{}
	addrs := make([]string, nodes)
	for i := range addrs {
		st := startReplStack(t)
		stacks[st.addr] = st
		addrs[i] = st.addr
	}
	c, err := client.New(client.Config{Nodes: addrs, DownBackoff: 10 * time.Millisecond, ReplicaDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	mc := newMeshCtl(t, stacks, depth)
	mc.rewire(c.Ring())
	waitMeshSynced(t, stacks, 10*time.Second)

	// The detector is the only thing allowed to promote. Its probe
	// consults the same liveness the mesh would (here: a kill ledger);
	// its act is the cpserver promote path: drain the new owner's link
	// from the corpse, flip ownership, rewire the survivors.
	var killed sync.Map
	var autoPromotions atomic.Int64
	act := func(victim string) error {
		confirm := func(newOwner string, slots []int) error {
			f := mc.takeLink(newOwner, victim)
			if f == nil {
				return fmt.Errorf("no replication link %s <- %s", newOwner, victim)
			}
			defer f.Close()
			if !f.WaitDisconnected(10 * time.Second) {
				return fmt.Errorf("link %s <- %s did not drain", newOwner, victim)
			}
			return nil
		}
		if err := m.Promote(victim, confirm); err != nil {
			return err
		}
		mc.setDead(victim)
		mc.rewire(c.Ring())
		autoPromotions.Add(1)
		return nil
	}
	det, err := detect.New(detect.Config{
		Probe: func(addr string) bool {
			_, dead := killed.Load(addr)
			return !dead
		},
		Act:       act,
		Interval:  10 * time.Millisecond,
		DownAfter: 50 * time.Millisecond,
		Cooldown:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	det.SetTargets(addrs)
	det.Start()
	t.Cleanup(det.Close)

	states := make([]keyState, writers*keysPerWriter)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := uint64(w*keysPerWriter + wrng.Intn(keysPerWriter))
				st := &states[k]
				ver := st.attempted + 1
				st.attempted = ver
				val := []byte(fmt.Sprintf("%d:%d", k, ver))
				if err := c.Set(k, val); err != nil {
					continue
				}
				if v, found, gerr := c.Get(k); gerr == nil && found && bytes.Equal(v, val) {
					st.confirmed = ver
				}
			}
		}(w, rng.Int63())
	}

	time.Sleep(time.Duration(100+rng.Intn(100)) * time.Millisecond)

	// kill stops a member the way cpserver's /kill drill does: its own
	// follower links first, then a graceful close (the source drains its
	// backlog — including a mid-initial-sync peer — before dying), and
	// the detector has to notice on its own.
	kill := func(victim string) {
		killed.Store(victim, true)
		mc.dropFollower(victim)
		stacks[victim].srv.Close()
	}
	waitPromotions := func(n int64) {
		deadline := time.Now().Add(20 * time.Second)
		for autoPromotions.Load() < n {
			if time.Now().After(deadline) {
				t.Fatalf("auto-promotion %d never converged (have %d, detector %+v)",
					n, autoPromotions.Load(), det.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	victim1 := addrs[rng.Intn(nodes)]
	var probeSlot int
	for s := 0; s < protocol.SlotCount; s++ {
		if c.Ring().Owner(s) == victim1 {
			probeSlot = s
			break
		}
	}
	kill(victim1)
	waitPromotions(1)

	// The slot's rank-1 standby is now its primary and is resyncing its
	// own standby (the old rank-2). Kill it before that resync settles.
	victim2 := c.Ring().Owner(probeSlot)
	if victim2 == victim1 || victim2 == "" {
		t.Fatalf("slot %d still owned by the corpse %q", probeSlot, victim2)
	}
	kill(victim2)
	waitPromotions(2)

	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if c.Ring().Contains(victim1) || c.Ring().Contains(victim2) {
		t.Fatal("a dead member is still in the ring")
	}
	if n := c.MigratingSlots(); n != 0 {
		t.Fatalf("windows still open after promotions: %d", n)
	}
	if st := m.Stats(); st.Promotions != 2 || st.Entries != 0 {
		t.Fatalf("stats after double failure: %+v (want Promotions=2, Entries=0)", st)
	}
	if ds := det.Status(); len(ds) != 1 || ds[0].Up != true {
		t.Fatalf("detector watch set = %+v, want only the survivor, up", ds)
	}

	var lost, stale, phantom int
	for k := range states {
		st := &states[k]
		if st.attempted == 0 {
			continue
		}
		v, found, err := c.Get(uint64(k))
		if err != nil {
			t.Fatalf("Get(%d) after double failure: %v", k, err)
		}
		if !found {
			if st.confirmed > 0 {
				lost++
				if lost <= 5 {
					t.Errorf("key %d: confirmed v%d lost entirely", k, st.confirmed)
				}
			}
			continue
		}
		var gotKey, gotVer uint64
		if _, err := fmt.Sscanf(string(v), "%d:%d", &gotKey, &gotVer); err != nil || gotKey != uint64(k) {
			t.Fatalf("key %d: corrupt or cross-key value %q", k, v)
		}
		if gotVer < st.confirmed {
			stale++
			if stale <= 5 {
				t.Errorf("key %d: holds v%d, older than confirmed v%d", k, gotVer, st.confirmed)
			}
		}
		if gotVer > st.attempted {
			phantom++
			if phantom <= 5 {
				t.Errorf("key %d: phantom v%d beyond attempted v%d", k, gotVer, st.attempted)
			}
		}
	}
	if lost+stale+phantom > 0 {
		t.Fatalf("double-failure invariants violated: %d lost, %d stale, %d phantom", lost, stale, phantom)
	}
}
