package rebalance

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
	"cphash/internal/replica"
)

// replStack is one fully replicated member: table + durability pipeline +
// replication source + serving front end — the same stack cmd/cpserver
// assembles per instance with -replicas 2.
type replStack struct {
	srv   *kvserver.Server
	table *lockhash.Table
	pipe  *persist.Pipeline
	src   *replica.Source
	addr  string
}

func startReplStack(t *testing.T) *replStack {
	t.Helper()
	pipe, err := persist.Open(persist.Config{
		Dir:     t.TempDir(),
		Policy:  persist.SyncNone,
		Streams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    8,
		CapacityBytes: 8 << 20,
		Sink:          func(i int) partition.ChangeSink { return pipe.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SetSource(persist.LockHashSource(table))
	if _, err := persist.RestoreLockHash(pipe, table); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Pipe:      pipe,
		Addr:      "127.0.0.1:0",
		Heartbeat: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:        "127.0.0.1:0",
		Workers:     2,
		NewBackend:  kvserver.NewLockHashBackend(table),
		Persist:     pipe,
		Replication: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) // closes replication and persistence too
	return &replStack{srv: srv, table: table, pipe: pipe, src: src, addr: srv.Addr()}
}

// wireMesh builds the links cmd/cpserver's rewire would: for every slot,
// the slot's standby follows the slot's owner for exactly that slot set.
// Returned as links[followerAddr][ownerAddr].
func wireMesh(t *testing.T, ring *cluster.Ring, stacks map[string]*replStack) map[string]map[string]*replica.Follower {
	t.Helper()
	want := map[string]map[string]*protocol.SlotSet{}
	for s := 0; s < protocol.SlotCount; s++ {
		owner, standby := ring.Owner(s), ring.Standby(s)
		if owner == "" || standby == "" {
			continue
		}
		byOwner := want[standby]
		if byOwner == nil {
			byOwner = map[string]*protocol.SlotSet{}
			want[standby] = byOwner
		}
		set := byOwner[owner]
		if set == nil {
			set = &protocol.SlotSet{}
			byOwner[owner] = set
		}
		set.Add(s)
	}
	links := map[string]map[string]*replica.Follower{}
	for follower, byOwner := range want {
		links[follower] = map[string]*replica.Follower{}
		for owner, set := range byOwner {
			f, err := replica.StartFollower(replica.FollowerConfig{
				Source:  stacks[owner].src.Addr(),
				Name:    follower,
				Slots:   set,
				Apply:   replica.NewLockHashApplier(stacks[follower].table),
				Backoff: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(f.Close)
			links[follower][owner] = f
		}
	}
	return links
}

// waitMeshSynced blocks until every source reports all its peers synced
// with the tail watermark acknowledged.
func waitMeshSynced(t *testing.T, stacks map[string]*replStack, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for _, st := range stacks {
		for {
			tail := st.src.Tail()
			peers := st.src.Status()
			ok := len(peers) > 0
			for _, ps := range peers {
				if !ps.Synced || ps.Acked < tail {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mesh did not sync: %s tail=%d peers=%+v", st.addr, tail, peers)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// keyState tracks one key's write history. Each key belongs to exactly
// one writer goroutine, so versions are strictly sequential and the
// fields need no locking (the final read happens after wg.Wait).
type keyState struct {
	confirmed uint64 // highest version whose read-back succeeded
	attempted uint64 // highest version ever sent
}

// TestPromotionInvariantsUnderLoad is the promotion property test: live
// writers hammer a 3-member replicated cluster, one member dies at a
// random point, and the standby is promoted while traffic continues.
// Invariants checked afterwards:
//
//   - zero acked-write loss: every write whose read-back succeeded is
//     still present with that version or a later one the same writer sent
//     (the graceful shutdown drains the source's backlog to its synced
//     followers before the watermark-gated window closes);
//   - no phantoms: no key holds a version newer than its writer ever
//     sent, and no value bleeds across keys;
//   - routing settles: the dead member leaves the ring with no windows
//     left open and exactly one promotion counted, no entries streamed;
//   - surviving links stay fresh: heartbeats keep follower staleness
//     bounded on the post-promotion topology.
//
// A write that was sent but never confirmed may land or vanish — that is
// the documented asynchronous-replication contract — so those keys are
// only checked for version sanity, not presence.
func TestPromotionInvariantsUnderLoad(t *testing.T) {
	const (
		nodes         = 3
		writers       = 3
		keysPerWriter = 300
	)
	rng := rand.New(rand.NewSource(42))

	stacks := map[string]*replStack{}
	addrs := make([]string, nodes)
	for i := range addrs {
		st := startReplStack(t)
		stacks[st.addr] = st
		addrs[i] = st.addr
	}
	c, err := client.New(client.Config{Nodes: addrs, DownBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	links := wireMesh(t, c.Ring(), stacks)
	waitMeshSynced(t, stacks, 10*time.Second)

	// Live traffic: each writer owns a disjoint key range and bumps
	// per-key versions; a write counts as acked only once its read-back
	// returns the exact value (processed, not merely mailed). Errors are
	// expected while the victim is down and are simply not confirmed.
	states := make([]keyState, writers*keysPerWriter)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := uint64(w*keysPerWriter + wrng.Intn(keysPerWriter))
				st := &states[k]
				ver := st.attempted + 1
				st.attempted = ver
				val := []byte(fmt.Sprintf("%d:%d", k, ver))
				var err error
				if ver%7 == 0 {
					err = c.SetTTL(k, val, time.Hour)
				} else {
					err = c.Set(k, val)
				}
				if err != nil {
					continue
				}
				if v, found, gerr := c.Get(k); gerr == nil && found && bytes.Equal(v, val) {
					st.confirmed = ver
				}
			}
		}(w, rng.Int63())
	}

	time.Sleep(time.Duration(100+rng.Intn(150)) * time.Millisecond)

	// Kill a random member mid-traffic. Its own follower links come down
	// first (nothing must apply into a table whose pipeline is closing),
	// then the graceful close: fence, barrier, drain the source to its
	// followers, close the pipeline.
	victim := addrs[rng.Intn(nodes)]
	for owner, f := range links[victim] {
		f.Close()
		delete(links[victim], owner)
	}
	stacks[victim].srv.Close()

	err = m.Promote(victim, func(newOwner string, slots []int) error {
		f := links[newOwner][victim]
		if f == nil {
			return fmt.Errorf("no replication link %s <- %s", newOwner, victim)
		}
		if !f.WaitDisconnected(10 * time.Second) {
			return fmt.Errorf("link %s <- %s did not drain", newOwner, victim)
		}
		f.Close()
		delete(links[newOwner], victim)
		return nil
	})
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// Let traffic run on the promoted topology before stopping.
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if c.Ring().Contains(victim) {
		t.Fatal("dead member still in the ring")
	}
	if n := c.MigratingSlots(); n != 0 {
		t.Fatalf("windows still open after promotion: %d", n)
	}
	if st := m.Stats(); st.Promotions != 1 || st.Entries != 0 {
		t.Fatalf("stats after promotion: %+v (want Promotions=1, Entries=0)", st)
	}

	var lost, stale, phantom int
	for k := range states {
		st := &states[k]
		if st.attempted == 0 {
			continue
		}
		v, found, err := c.Get(uint64(k))
		if err != nil {
			t.Fatalf("Get(%d) after promotion: %v", k, err)
		}
		if !found {
			if st.confirmed > 0 {
				lost++
				if lost <= 5 {
					t.Errorf("key %d: confirmed v%d lost entirely", k, st.confirmed)
				}
			}
			continue
		}
		var gotKey, gotVer uint64
		if _, err := fmt.Sscanf(string(v), "%d:%d", &gotKey, &gotVer); err != nil || gotKey != uint64(k) {
			t.Fatalf("key %d: corrupt or cross-key value %q", k, v)
		}
		if gotVer < st.confirmed {
			stale++
			if stale <= 5 {
				t.Errorf("key %d: holds v%d, older than confirmed v%d", k, gotVer, st.confirmed)
			}
		}
		if gotVer > st.attempted {
			phantom++
			if phantom <= 5 {
				t.Errorf("key %d: phantom v%d beyond attempted v%d", k, gotVer, st.attempted)
			}
		}
	}
	if lost+stale+phantom > 0 {
		t.Fatalf("promotion invariants violated: %d lost, %d stale, %d phantom", lost, stale, phantom)
	}

	// Surviving links (both endpoints alive) must stay heartbeat-fresh
	// even though their slot subscriptions predate the promotion.
	for follower, byOwner := range links {
		if follower == victim {
			continue
		}
		for owner, f := range byOwner {
			if owner == victim {
				continue
			}
			if d, ok := f.Staleness(); !ok || d > 2*time.Second {
				t.Errorf("link %s <- %s staleness %v ok=%v, want fresh", follower, owner, d, ok)
			}
		}
	}
}
