package rebalance

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
)

// startReplNode is startLockNode exposing the table, so promotion tests
// can stage replica copies the way internal/replica would have.
func startReplNode(t *testing.T) (*kvserver.Server, *lockhash.Table) {
	t.Helper()
	table := lockhash.MustNew(lockhash.Config{Partitions: 8, CapacityBytes: 8 << 20})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, table
}

// TestPromoteFailsOverToStandby kills a member whose slots were
// replicated to their standbys and checks that Promote flips ownership
// without data movement: every key stays readable with its exact value,
// routing settles, and the dead member leaves the ring.
func TestPromoteFailsOverToStandby(t *testing.T) {
	const nodes, keys = 3, 600
	srvs := make([]*kvserver.Server, nodes)
	tables := make(map[string]*lockhash.Table, nodes)
	addrs := make([]string, nodes)
	for i := range srvs {
		srv, table := startReplNode(t)
		srvs[i], addrs[i] = srv, srv.Addr()
		tables[srv.Addr()] = table
	}

	c, err := client.New(client.Config{Nodes: addrs, DownBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	for k := uint64(0); k < keys; k++ {
		if err := c.Set(k, []byte(fmt.Sprintf("value-%d", k))); err != nil {
			t.Fatalf("seed Set(%d): %v", k, err)
		}
	}

	// Stage what internal/replica maintains continuously: every slot's
	// entries mirrored on the slot's standby member.
	ring := c.Ring()
	for k := uint64(0); k < keys; k++ {
		if sb := ring.Standby(cluster.SlotOf(k)); sb != "" {
			tables[sb].Put(k, []byte(fmt.Sprintf("value-%d", k)))
		}
	}

	victim := addrs[0]
	srvs[0].Close()

	var confirmed []string
	err = m.Promote(victim, func(newOwner string, slots []int) error {
		if newOwner == victim {
			t.Errorf("promotion targeted the dead member itself")
		}
		if len(slots) == 0 {
			t.Errorf("confirm called with no slots for %s", newOwner)
		}
		confirmed = append(confirmed, newOwner)
		return nil
	})
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}

	if c.MigratingSlots() != 0 {
		t.Fatalf("windows still open after promotion: %d", c.MigratingSlots())
	}
	if c.Ring().Contains(victim) {
		t.Fatal("dead member still in the ring")
	}
	if len(confirmed) == 0 {
		t.Fatal("confirm was never called")
	}
	if st := m.Stats(); st.Promotions != 1 || st.Entries != 0 {
		t.Fatalf("stats after promotion: %+v (want Promotions=1 and no streamed entries)", st)
	}
	for k := uint64(0); k < keys; k++ {
		v, found, err := c.Get(k)
		if err != nil {
			t.Fatalf("Get(%d) after promotion: %v", k, err)
		}
		if !found || string(v) != fmt.Sprintf("value-%d", k) {
			t.Fatalf("Get(%d) after promotion = %q found=%v", k, v, found)
		}
	}
}

// TestPromoteResumesAfterConfirmFailure drives the straggler path: one
// new owner's confirm fails, the promotion stays pending with its
// windows open, and Resume re-confirms only the failed owner.
func TestPromoteResumesAfterConfirmFailure(t *testing.T) {
	const nodes = 3
	addrs := make([]string, nodes)
	srvs := make([]*kvserver.Server, nodes)
	for i := range srvs {
		srv, _ := startReplNode(t)
		srvs[i], addrs[i] = srv, srv.Addr()
	}
	c, err := client.New(client.Config{Nodes: addrs, DownBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	victim := addrs[0]
	srvs[0].Close()

	failFor := ""
	calls := map[string]int{}
	confirm := func(newOwner string, slots []int) error {
		calls[newOwner]++
		if failFor == "" {
			failFor = newOwner // fail the first owner we see, once
		}
		if newOwner == failFor && calls[newOwner] == 1 {
			return errors.New("watermark not reached")
		}
		return nil
	}

	if err := m.Promote(victim, confirm); err == nil {
		t.Fatal("Promote succeeded despite a failing confirm")
	}
	if c.MigratingSlots() == 0 {
		t.Fatal("no window left open for the unconfirmed owner")
	}
	if st := m.Stats(); st.Promotions != 0 {
		t.Fatalf("promotion counted before completion: %+v", st)
	}

	if err := m.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if c.MigratingSlots() != 0 {
		t.Fatalf("windows still open after resume: %d", c.MigratingSlots())
	}
	if got := calls[failFor]; got != 2 {
		t.Fatalf("failed owner confirmed %d times, want 2", got)
	}
	for owner, n := range calls {
		if owner != failFor && n != 1 {
			t.Fatalf("owner %s re-confirmed %d times after success", owner, n)
		}
	}
	if st := m.Stats(); st.Promotions != 1 {
		t.Fatalf("stats after resume: %+v", st)
	}
	if c.Ring().Contains(victim) {
		t.Fatal("dead member still in the ring after resume")
	}
}
