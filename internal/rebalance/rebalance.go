// Package rebalance implements online slot migration for CPHash clusters:
// when the member set changes, the entries of every moved continuum slot
// are streamed from their previous owner to their new one while clients
// keep serving traffic.
//
// The protocol is deliberately simple, built from three primitives the
// rest of the stack provides:
//
//  1. client.AddNode/RemoveNode rebalance the ring immediately — writes
//     start flowing to the new owners at once — and open a dual-read
//     window per moved slot (miss on the new owner → retry the old one),
//     so no request observes a half-moved slot as a miss.
//
//  2. The wire SCAN op streams a slot set's live entries off each source
//     with TTLs preserved; the Migrator replays them through the updated
//     ring, which routes every moved key to its new owner by construction.
//     Replays use plain INSERT_TTL frames, so string-key entries (whose
//     stored value embeds the key) move byte-identically.
//
//  3. MarkMigrated closes the window per source, and PURGE removes the
//     moved entries from the source so a later topology change that hands
//     a slot back cannot resurrect stale copies.
//
// Consistency contract (cache semantics, the same the paper's memcached
// deployments give): keys not written concurrently with a migration are
// never lost and never duplicated; a key written concurrently may land
// either its old or its new value (a refill repairs it), exactly as with
// any concurrent SET race. Entries whose TTL elapses mid-migration may
// expire on either side; remaining TTLs transfer within clock skew plus
// stream latency.
//
// One Migrator instance serializes migrations and accumulates progress
// stats, which cmd/cpserver exposes over HTTP.
package rebalance

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/client"
	"cphash/internal/obs"
	"cphash/internal/protocol"
)

// Config parameterizes a Migrator.
type Config struct {
	// Batch bounds entries per SCAN round trip (default 512).
	Batch int
}

// Stats is a snapshot of migration progress, cumulative across runs.
type Stats struct {
	Migrations   int64 // topology changes processed
	SlotsTotal   int64 // slots scheduled for movement
	SlotsDone    int64 // slots whose window has been closed
	Sources      int64 // source members drained (cumulative)
	Entries      int64 // entries streamed off sources
	Bytes        int64 // value bytes streamed
	Replayed     int64 // entries written to their new owners
	ReplayErrors int64 // entries that failed to replay
	Purged       int64 // stale source entries removed after migration
	Promotions   int64 // failover promotions completed
	Active       bool  // a migration is running right now
}

// Migrator moves slot data when a Client's membership changes.
type Migrator struct {
	c     *client.Client
	batch int

	mu      sync.Mutex // serializes migrations
	pending *client.Migration
	promo   *promotion
	active  atomic.Bool

	migrations, slotsTotal, slotsDone   atomic.Int64
	sources, entries, bytes             atomic.Int64
	replayed, replayErrors, purgedStale atomic.Int64
	promotions                          atomic.Int64
	// windowHist records how long each migration window (data-moving run
	// or promotion confirm round) stayed open; lastWindowNS is the most
	// recent sample, as a directly readable gauge.
	windowHist   obs.Hist
	lastWindowNS atomic.Int64
}

// promotion is an in-flight failover: the departed member and, per new
// owner, the slots awaiting watermark confirmation. Owners drop out of
// byOwner as they confirm, so a retry re-confirms only the stragglers.
type promotion struct {
	removed string
	byOwner map[string][]int
	confirm func(newOwner string, slots []int) error
}

// New builds a Migrator over the client whose membership it will follow.
func New(c *client.Client, cfg Config) *Migrator {
	if cfg.Batch <= 0 {
		cfg.Batch = 512
	}
	return &Migrator{c: c, batch: cfg.Batch}
}

// Stats snapshots progress counters.
func (m *Migrator) Stats() Stats {
	return Stats{
		Migrations:   m.migrations.Load(),
		SlotsTotal:   m.slotsTotal.Load(),
		SlotsDone:    m.slotsDone.Load(),
		Sources:      m.sources.Load(),
		Entries:      m.entries.Load(),
		Bytes:        m.bytes.Load(),
		Replayed:     m.replayed.Load(),
		ReplayErrors: m.replayErrors.Load(),
		Purged:       m.purgedStale.Load(),
		Promotions:   m.promotions.Load(),
		Active:       m.active.Load(),
	}
}

// Promote fails over member addr — typically one that just died — onto
// the standby replicas of its slots. Unlike RemoveNode, nothing is
// streamed off the departing member: the rendezvous continuum reassigns
// each removed slot to exactly its rank-1 scorer (cluster.Ring.Standby),
// which is where internal/replica placed the slot's replica, so the data
// is already on every new owner and promotion is a pure ownership flip.
//
// confirm(newOwner, slots) gates the flip per new owner: it must return
// nil only once the replica there has applied everything the failed
// primary acknowledged — e.g. the coordinator waits for the follower
// link to drain and close, or for its watermark to reach the primary's
// final tail. Until confirm returns, the moved slots sit in the usual
// dual-read window (fallback reads to the dead member fail fast, as for
// any dead-node removal, so clients see at most a transient miss-shaped
// window, never stale routing). A nil confirm flips immediately.
//
// On a confirm error the unconfirmed owners' windows stay open and the
// promotion stays pending: Resume (or the automatic resume before the
// next topology change) re-confirms only the stragglers. confirm runs
// under the Migrator's serialization lock, so it should bound its wait.
func (m *Migrator) Promote(addr string, confirm func(newOwner string, slots []int) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.resumeLocked(); err != nil {
		return fmt.Errorf("rebalance: resuming pending migration: %w", err)
	}
	mig, err := m.c.RemoveNode(addr)
	if err != nil {
		return err
	}
	m.migrations.Add(1)
	m.slotsTotal.Add(int64(mig.Slots()))
	ring := m.c.Ring()
	byOwner := make(map[string][]int)
	for _, slots := range mig.Moved {
		for _, s := range slots {
			owner := ring.Owner(s)
			byOwner[owner] = append(byOwner[owner], s)
		}
	}
	m.promo = &promotion{removed: addr, byOwner: byOwner, confirm: confirm}
	return m.promoteLocked()
}

// promoteLocked confirms and settles every owner of the pending
// promotion still awaiting its watermark, retiring the departed member
// once the last window closes.
func (m *Migrator) promoteLocked() error {
	m.active.Store(true)
	defer m.active.Store(false)
	defer m.observeWindow(time.Now())
	p := m.promo
	var firstErr error
	for owner, slots := range p.byOwner {
		if p.confirm != nil {
			if err := p.confirm(owner, slots); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("rebalance: promote %v to %s: %w", slots, owner, err)
				}
				continue
			}
		}
		m.slotsDone.Add(int64(m.c.MarkMigrated(slots)))
		delete(p.byOwner, owner)
	}
	if firstErr != nil {
		return firstErr
	}
	if err := m.c.RetireNode(p.removed); err != nil {
		return err
	}
	m.promo = nil
	m.promotions.Add(1)
	return nil
}

// AddNode joins a member and migrates the slots that moved to it. A plan
// left unfinished by an earlier failure is resumed first, so a transient
// fault never wedges the coordinator behind ErrMigrationPending.
func (m *Migrator) AddNode(addr string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.resumeLocked(); err != nil {
		return fmt.Errorf("rebalance: resuming pending migration: %w", err)
	}
	mig, err := m.c.AddNode(addr)
	if err != nil {
		return err
	}
	return m.runLocked(mig)
}

// AddNodeWarm joins a member that already holds its slots' data — a
// node restarting warm from its durability directory (internal/persist)
// after a stop or crash. The ring placement is deterministic (rendezvous
// on the member address), so a node rejoining under the same address is
// assigned exactly the slots it served before; instead of streaming
// those entries from scratch, every moved slot's window is closed
// immediately and the joiner serves them from its recovered table.
//
// Cache-consistency caveat, same family as the migration contract: keys
// in the joiner's slots that were WRITTEN while it was away live on the
// interim owners, and reads route back to the joiner after this call —
// a stale or missing copy there reads as stale data or a miss until the
// entry is refilled or expires. Populate-then-rejoin workloads (and any
// workload that can tolerate a cache miss) are unaffected. Use AddNode
// when the joiner's disk state is gone or its address changed.
func (m *Migrator) AddNodeWarm(addr string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.resumeLocked(); err != nil {
		return fmt.Errorf("rebalance: resuming pending migration: %w", err)
	}
	mig, err := m.c.AddNode(addr)
	if err != nil {
		return err
	}
	m.migrations.Add(1)
	for _, slots := range mig.Moved {
		m.slotsTotal.Add(int64(len(slots)))
		m.slotsDone.Add(int64(m.c.MarkMigrated(slots)))
	}
	return nil
}

// RemoveNode departs a member, migrating its slots to the survivors
// first (resuming any unfinished plan, like AddNode). The member's server
// can be shut down once this returns.
func (m *Migrator) RemoveNode(addr string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.resumeLocked(); err != nil {
		return fmt.Errorf("rebalance: resuming pending migration: %w", err)
	}
	mig, err := m.c.RemoveNode(addr)
	if err != nil {
		return err
	}
	return m.runLocked(mig)
}

// Run executes a migration plan produced by client.AddNode/RemoveNode
// directly, for callers that manage membership themselves. Re-running a
// partially failed plan is safe: drained sources stream nothing and their
// windows are already closed.
func (m *Migrator) Run(mig *client.Migration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runLocked(mig)
}

// Resume retries the unfinished plan from the last failed migration, if
// any. It reports nil when there is nothing to resume.
func (m *Migrator) Resume() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resumeLocked()
}

// Pending reports how many sources of a failed plan still await draining
// (0 = no failed plan outstanding).
func (m *Migrator) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending == nil {
		return 0
	}
	return len(m.pending.Moved)
}

// runLocked executes a fresh plan, remembering it for Resume on failure.
// Plan-level counters are charged here, once per plan; retries charge
// nothing extra (drainSource books only windows it actually closes).
func (m *Migrator) runLocked(mig *client.Migration) error {
	m.migrations.Add(1)
	m.slotsTotal.Add(int64(mig.Slots()))
	m.pending = mig
	if err := m.run(mig); err != nil {
		return err
	}
	m.pending = nil
	return nil
}

func (m *Migrator) resumeLocked() error {
	if m.promo != nil {
		if err := m.promoteLocked(); err != nil {
			return err
		}
	}
	if m.pending == nil {
		return nil
	}
	if err := m.run(m.pending); err != nil {
		return err
	}
	m.pending = nil
	return nil
}

// run streams every source in parallel (sources are distinct members, so
// the streams do not contend). Per source: scan the moved slots, replay
// each entry through the updated ring, close the dual-read window, purge
// the source's stale copies, and retire a departing member's pool.
//
// On error the affected source's window stays OPEN: reads keep falling
// back to it, nothing is lost, and a retry (Resume, or the automatic one
// before the next AddNode/RemoveNode) re-drains exactly the unfinished
// sources. The other sources proceed independently.
func (m *Migrator) run(mig *client.Migration) error {
	m.active.Store(true)
	defer m.active.Store(false)
	defer m.observeWindow(time.Now())

	var wg sync.WaitGroup
	errs := make([]error, 0, len(mig.Moved))
	var errMu sync.Mutex
	for source, slots := range mig.Moved {
		wg.Add(1)
		go func(source string, slots []int) {
			defer wg.Done()
			if err := m.drainSource(mig, source, slots); err != nil {
				errMu.Lock()
				errs = append(errs, fmt.Errorf("rebalance: source %s: %w", source, err))
				errMu.Unlock()
			}
		}(source, slots)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// observeWindow records one migration window's duration; start is the
// moment the window opened (captured by the deferred call's argument).
func (m *Migrator) observeWindow(start time.Time) {
	ns := time.Since(start).Nanoseconds()
	m.windowHist.Record(ns)
	m.lastWindowNS.Store(ns)
}

// Collect emits the migrator's counters and window-duration histogram.
func (m *Migrator) Collect(e *obs.Expo, labels string) {
	st := m.Stats()
	e.Counter("cphash_rebalance_migrations_total", "Topology changes processed.", labels, st.Migrations)
	e.Counter("cphash_rebalance_slots_total", "Slots scheduled for movement.", labels, st.SlotsTotal)
	e.Counter("cphash_rebalance_slots_done_total", "Slots whose dual-read window has closed.", labels, st.SlotsDone)
	e.Counter("cphash_rebalance_entries_total", "Entries streamed off sources.", labels, st.Entries)
	e.Counter("cphash_rebalance_bytes_total", "Value bytes streamed off sources.", labels, st.Bytes)
	e.Counter("cphash_rebalance_replayed_total", "Entries written to their new owners.", labels, st.Replayed)
	e.Counter("cphash_rebalance_replay_errors_total", "Entries that failed to replay.", labels, st.ReplayErrors)
	e.Counter("cphash_rebalance_purged_total", "Stale source entries removed after migration.", labels, st.Purged)
	e.Counter("cphash_rebalance_promotions_total", "Failover promotions completed.", labels, st.Promotions)
	var active float64
	if st.Active {
		active = 1
	}
	e.Gauge("cphash_rebalance_active", "Whether a migration is running (1 = yes).", labels, active)
	e.Gauge("cphash_rebalance_last_window_ns", "Duration of the most recent migration window.", labels, float64(m.lastWindowNS.Load()))
	e.Histogram("cphash_rebalance_window_ns", "Migration window durations in nanoseconds.", labels, m.windowHist.Snapshot())
}

// drainSource migrates one source's moved slots.
func (m *Migrator) drainSource(mig *client.Migration, source string, slots []int) error {
	if m.c.MigratingIn(slots) == 0 {
		// Already drained (a retried plan): the windows are closed, so
		// the data moved and the source was purged — nothing to do.
		return nil
	}
	var set protocol.SlotSet
	for _, s := range slots {
		set.Add(s)
	}
	err := m.c.ScanNode(source, &set, m.batch, func(e protocol.ScanEntry) error {
		m.entries.Add(1)
		m.bytes.Add(int64(len(e.Value)))
		// Replay through the updated ring: the moved key routes to its
		// new owner. INSERT_VER reproduces the stored entry exactly —
		// including embedded string-key framing and the CAS version, so
		// in-flight gets→cas loops survive the move — with its remaining
		// TTL.
		if err := m.c.SetTTLVer(e.Key, e.Value, time.Duration(e.TTL)*time.Millisecond, e.Version); err != nil {
			m.replayErrors.Add(1)
			return err
		}
		m.replayed.Add(1)
		return nil
	})
	if err != nil {
		return err // window stays open; re-running the plan resumes
	}
	m.slotsDone.Add(int64(m.c.MarkMigrated(slots)))
	m.sources.Add(1)
	// Purge the moved entries from the source so they cannot resurface as
	// stale copies if a later topology change (or a rejoin of the same
	// server) hands a slot back. The purge strictly FOLLOWS MarkMigrated:
	// while the window is open, fallback reads depend on the source still
	// holding the data; once it closes, an in-flight dual read that races
	// the purge re-checks its route and retries on the settled owner. A
	// departing member stays addressable (not retired) until its purge is
	// done.
	purged, perr := m.c.PurgeNode(source, &set)
	m.purgedStale.Add(int64(purged))
	if mig.Removed == source {
		if rerr := m.c.RetireNode(source); rerr != nil && perr == nil {
			perr = rerr
		}
	}
	if perr != nil {
		// The window is already closed and the data already moved;
		// report the purge failure but do not undo the migration.
		return fmt.Errorf("purge after migration: %w", perr)
	}
	return nil
}
