package rebalance

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/protocol"
)

// node is one in-process server plus a handle to its table for invariant
// checks after the dust settles.
type node struct {
	srv   *kvserver.Server
	check func() error
}

// startLockNode brings up a lockhash-backed server (cheap: no spinning
// server goroutines, which matters on single-CPU CI hosts).
func startLockNode(t testing.TB) *node {
	t.Helper()
	table := lockhash.MustNew(lockhash.Config{Partitions: 16, CapacityBytes: 8 << 20})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &node{srv: srv, check: table.CheckInvariants}
}

// startCPNode brings up a CPSERVER (message-passing CPHASH backend), so at
// least one migration test exercises the scan-job path end to end.
func startCPNode(t testing.TB) *node {
	t.Helper()
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: 8 << 20,
		MaxClients:    1,
		Seed:          1,
	})
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    1,
		NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		table.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); table.Close() })
	return &node{srv: srv, check: table.CheckInvariants}
}

const seedTTL = time.Hour // long enough that nothing expires mid-test

// seedData writes the reference working set: fixed keys 0..n-1 (every
// fourth with a TTL) plus nStr string keys, and read-backs everything so
// the writes are fully published before any migration starts.
func seedData(t *testing.T, c *client.Client, n, nStr int) {
	t.Helper()
	for k := uint64(0); k < uint64(n); k++ {
		var err error
		if k%4 == 0 {
			err = c.SetTTL(k, []byte(fmt.Sprintf("value-%d", k)), seedTTL)
		} else {
			err = c.Set(k, []byte(fmt.Sprintf("value-%d", k)))
		}
		if err != nil {
			t.Fatalf("seed Set(%d): %v", k, err)
		}
	}
	for i := 0; i < nStr; i++ {
		if err := c.SetString(strKey(i), []byte(fmt.Sprintf("strval-%d", i))); err != nil {
			t.Fatalf("seed SetString(%d): %v", i, err)
		}
	}
	verifyData(t, c, n, nStr, "seed read-back")
}

func strKey(i int) []byte { return []byte(fmt.Sprintf("user:%d:profile", i)) }

// verifyData asserts the whole reference set is readable with the right
// values — the no-loss half of the migration invariant.
func verifyData(t *testing.T, c *client.Client, n, nStr int, when string) {
	t.Helper()
	for k := uint64(0); k < uint64(n); k++ {
		v, found, err := c.Get(k)
		if err != nil {
			t.Fatalf("%s: Get(%d): %v", when, k, err)
		}
		if !found || string(v) != fmt.Sprintf("value-%d", k) {
			t.Fatalf("%s: Get(%d) = %q found=%v — key lost", when, k, v, found)
		}
	}
	for i := 0; i < nStr; i++ {
		v, found, err := c.GetString(strKey(i))
		if err != nil {
			t.Fatalf("%s: GetString(%d): %v", when, i, err)
		}
		if !found || string(v) != fmt.Sprintf("strval-%d", i) {
			t.Fatalf("%s: GetString(%d) = %q found=%v — key lost", when, i, v, found)
		}
	}
}

// verifyPlacement scans every live member and asserts the no-duplication
// half of the invariant: every routed key lives on exactly one member —
// the one the ring names — and TTLs survived within (0, seedTTL].
func verifyPlacement(t *testing.T, c *client.Client, when string) {
	t.Helper()
	ring := c.Ring()
	var all protocol.SlotSet
	for s := 0; s < cluster.Slots; s++ {
		all.Add(s)
	}
	where := map[uint64][]string{}
	for _, addr := range ring.Nodes() {
		err := c.ScanNode(addr, &all, 256, func(e protocol.ScanEntry) error {
			where[e.Key] = append(where[e.Key], addr)
			if e.TTL != 0 && time.Duration(e.TTL)*time.Millisecond > seedTTL {
				return fmt.Errorf("key %d: TTL grew to %d ms", e.Key, e.TTL)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: scan %s: %v", when, addr, err)
		}
	}
	for k, addrs := range where {
		if len(addrs) != 1 {
			t.Fatalf("%s: key %d duplicated on %v", when, k, addrs)
		}
		if owner := ring.NodeOf(k); addrs[0] != owner {
			t.Fatalf("%s: key %d on %s, ring owner %s", when, k, addrs[0], owner)
		}
	}
}

// TestMigrationInvariantProperty is the migration-invariant property test:
// for a random (seeded) sequence of AddNode/RemoveNode operations over a
// seeded data set, after every rebalance the set of readable keys equals
// the original set — no loss, no duplication, TTLs preserved — and every
// key lives exactly where the ring says it should.
func TestMigrationInvariantProperty(t *testing.T) {
	nKeys, nStr, steps := 400, 40, 5
	if testing.Short() {
		nKeys, nStr, steps = 150, 15, 3
	}

	// A pool of servers; membership starts with two and wanders.
	pool := make([]*node, 5)
	for i := range pool {
		pool[i] = startLockNode(t)
	}
	member := map[string]bool{pool[0].srv.Addr(): true, pool[1].srv.Addr(): true}
	c, err := client.New(client.Config{Nodes: []string{pool[0].srv.Addr(), pool[1].srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := New(c, Config{Batch: 128})

	seedData(t, c, nKeys, nStr)
	verifyPlacement(t, c, "after seed")

	rng := rand.New(rand.NewSource(42))
	for step := 0; step < steps; step++ {
		// Pick a legal random topology change.
		var candidates []string
		add := rng.Intn(2) == 0 || len(member) <= 1
		if len(member) == len(pool) {
			add = false
		}
		for _, nd := range pool {
			a := nd.srv.Addr()
			if member[a] != add {
				candidates = append(candidates, a)
			}
		}
		addr := candidates[rng.Intn(len(candidates))]
		var what string
		if add {
			what = fmt.Sprintf("step %d: AddNode(%s)", step, addr)
			err = m.AddNode(addr)
			member[addr] = true
		} else {
			what = fmt.Sprintf("step %d: RemoveNode(%s)", step, addr)
			err = m.RemoveNode(addr)
			delete(member, addr)
		}
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if pending := c.MigratingSlots(); pending != 0 {
			t.Fatalf("%s: %d slots still migrating", what, pending)
		}
		verifyData(t, c, nKeys, nStr, what)
		verifyPlacement(t, c, what)
	}

	st := m.Stats()
	if st.Migrations != int64(steps) || st.SlotsDone != st.SlotsTotal || st.ReplayErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Entries == 0 || st.Replayed != st.Entries {
		t.Fatalf("nothing streamed? %+v", st)
	}
	for _, nd := range pool {
		if err := nd.check(); err != nil {
			t.Fatalf("table invariants: %v", err)
		}
	}
}

// TestMigrationCPHashBackend runs one add + one remove against CPSERVER
// nodes, exercising the scan-job path (iteration on the owning server
// goroutines) end to end.
func TestMigrationCPHashBackend(t *testing.T) {
	nKeys, nStr := 200, 20
	if testing.Short() {
		nKeys, nStr = 80, 8
	}
	a, b, d := startCPNode(t), startCPNode(t), startCPNode(t)
	c, err := client.New(client.Config{Nodes: []string{a.srv.Addr(), b.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := New(c, Config{Batch: 64})

	seedData(t, c, nKeys, nStr)
	if err := m.AddNode(d.srv.Addr()); err != nil {
		t.Fatal(err)
	}
	verifyData(t, c, nKeys, nStr, "after AddNode")
	verifyPlacement(t, c, "after AddNode")
	if err := m.RemoveNode(b.srv.Addr()); err != nil {
		t.Fatal(err)
	}
	verifyData(t, c, nKeys, nStr, "after RemoveNode")
	verifyPlacement(t, c, "after RemoveNode")
}

// TestMigrationRaceUnderLoad is the -race hammer: Get/Set/Delete traffic
// runs concurrently with a live join and a live leave. Keys in the stable
// range are never written during the migrations and must all survive with
// their original values (no lost updates); churn keys are allowed any
// racy outcome (cache semantics) but must never produce an error other
// than a clean miss. Run with -race to also hunt double-frees in the
// partition iteration paths.
func TestMigrationRaceUnderLoad(t *testing.T) {
	nStable := 300
	churnWriters := 3
	if testing.Short() {
		nStable = 120
		churnWriters = 2
	}

	nodes := []*node{startLockNode(t), startLockNode(t), startLockNode(t)}
	joining := startLockNode(t)
	addrs := []string{nodes[0].srv.Addr(), nodes[1].srv.Addr(), nodes[2].srv.Addr()}
	c, err := client.New(client.Config{Nodes: addrs, ConnsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := New(c, Config{Batch: 64})

	seedData(t, c, nStable, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var trafficErrs atomic.Int64
	// Churn traffic: writes/deletes on keys ≥ 1<<20, reads everywhere.
	for w := 0; w < churnWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			base := uint64(1<<20 + w*1000)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := base + uint64(rng.Intn(200))
				switch rng.Intn(4) {
				case 0:
					if _, err := c.Delete(k); err != nil {
						trafficErrs.Add(1)
					}
				case 1, 2:
					if err := c.Set(k, []byte(fmt.Sprintf("churn-%d-%d", w, i))); err != nil {
						trafficErrs.Add(1)
					}
				default:
					if _, _, err := c.Get(k); err != nil {
						trafficErrs.Add(1)
					}
				}
				// Reads of the stable range must hit THROUGHOUT the
				// migration (dual-read window).
				sk := uint64(rng.Intn(nStable))
				if _, found, err := c.Get(sk); err != nil || !found {
					t.Errorf("stable Get(%d) during migration: found=%v err=%v", sk, found, err)
					trafficErrs.Add(1)
					return
				}
			}
		}(w)
	}

	// Live join, then live leave, under the traffic above.
	if err := m.AddNode(joining.srv.Addr()); err != nil {
		t.Fatalf("AddNode under load: %v", err)
	}
	if err := m.RemoveNode(addrs[1]); err != nil {
		t.Fatalf("RemoveNode under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if t.Failed() {
		return
	}
	verifyData(t, c, nStable, 0, "after live join+leave")
	verifyPlacement(t, c, "after live join+leave")
	st := m.Stats()
	if st.Migrations != 2 || st.SlotsDone != st.SlotsTotal {
		t.Fatalf("stats: %+v", st)
	}
	for _, nd := range append(nodes, joining) {
		if err := nd.check(); err != nil {
			t.Fatalf("table invariants: %v", err)
		}
	}
}

// TestMigrationSourceFailureKeepsWindowOpen: if a source dies mid-stream,
// the migrator reports the error and the dual-read window stays open, so
// no settled read path points at data that never moved.
func TestMigrationSourceFailureKeepsWindowOpen(t *testing.T) {
	a, b := startLockNode(t), startLockNode(t)
	c, err := client.New(client.Config{
		Nodes:       []string{a.srv.Addr()},
		MaxRetries:  1,
		DownBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := New(c, Config{})

	for k := uint64(0); k < 100; k++ {
		if err := c.Set(k, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the (only) source, then try to migrate to b: the plan must
	// fail and every moved slot must still be pending.
	mig, err := c.AddNode(b.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	a.srv.Close()
	if err := m.Run(mig); err == nil {
		t.Fatal("migration off a dead source reported success")
	}
	if c.MigratingSlots() != mig.Slots() {
		t.Fatalf("window closed despite failure: %d of %d pending",
			c.MigratingSlots(), mig.Slots())
	}
	if m.Pending() == 0 {
		t.Fatal("failed plan not retained for resume")
	}

	// The coordinator is not wedged: once the fault clears (here the
	// source comes back empty, as after a crash), Resume finishes the
	// plan and settles routing.
	table := lockhash.MustNew(lockhash.Config{Partitions: 16, CapacityBytes: 4 << 20})
	revived, err := kvserver.Serve(kvserver.Config{
		Addr:       a.srv.Addr(),
		Workers:    1,
		NewBackend: kvserver.NewLockHashBackend(table),
	})
	if err != nil {
		t.Fatalf("rebinding the source address: %v", err)
	}
	t.Cleanup(func() { revived.Close() })
	time.Sleep(50 * time.Millisecond) // let the failed dial's backoff lapse
	if err := m.Resume(); err != nil {
		t.Fatalf("Resume after the source returned: %v", err)
	}
	if c.MigratingSlots() != 0 || m.Pending() != 0 {
		t.Fatalf("resume left %d slots / %d sources pending", c.MigratingSlots(), m.Pending())
	}
	if m.Resume() != nil {
		t.Fatal("Resume with nothing pending must be a no-op")
	}
}
