package rebalance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"cphash/internal/client"
	"cphash/internal/cluster"
	"cphash/internal/lockhash"
)

// seedVersioned builds n keys through RMW histories (add + a few incrs)
// and returns each key's final value and CAS version as the client saw
// them. Every key ends numeric so later incrs keep working.
func seedVersioned(t *testing.T, c *client.Client, n int) (map[uint64][]byte, map[uint64]uint64) {
	t.Helper()
	vals := make(map[uint64][]byte, n)
	vers := make(map[uint64]uint64, n)
	for k := uint64(0); k < uint64(n); k++ {
		if out, err := c.Add(k, []byte("100"), 0); err != nil || !out.Stored() {
			t.Fatalf("add %d: %+v %v", k, out, err)
		}
		for j := uint64(0); j < 1+k%3; j++ {
			if out, err := c.Incr(k, k+1); err != nil || !out.Stored() {
				t.Fatalf("incr %d: %+v %v", k, out, err)
			}
		}
		v, ver, found, err := c.Gets(k)
		if err != nil || !found {
			t.Fatalf("gets %d: found=%v err=%v", k, found, err)
		}
		vals[k] = append([]byte{}, v...)
		vers[k] = ver
	}
	return vals, vers
}

// verifyVersioned checks every seeded key still carries its exact value
// and version token, and that the token still drives a successful CAS —
// the operation version survival exists for. The CAS mutates the key, so
// it also refreshes vals/vers for any later phase.
func verifyVersioned(t *testing.T, c *client.Client, vals map[uint64][]byte, vers map[uint64]uint64, when string) {
	t.Helper()
	for k, want := range vals {
		v, ver, found, err := c.Gets(k)
		if err != nil || !found {
			t.Fatalf("%s: gets %d: found=%v err=%v", when, k, found, err)
		}
		if !bytes.Equal(v, want) || ver != vers[k] {
			t.Fatalf("%s: key %d = %q v%d, want %q v%d", when, k, v, ver, want, vers[k])
		}
		newVal := []byte(fmt.Sprintf("%d", 1000+k))
		out, err := c.Cas(k, newVal, ver, 0)
		if err != nil || !out.Stored() {
			t.Fatalf("%s: cas %d with surviving token v%d: %+v %v", when, k, ver, out, err)
		}
		if out.Ver <= ver {
			t.Fatalf("%s: cas %d version went %d → %d, want strictly increasing", when, k, ver, out.Ver)
		}
		vals[k] = newVal
		vers[k] = out.Ver
	}
}

// TestPromotePreservesRMWVersions: failover must not invalidate CAS
// tokens. Standby copies are staged with the primary's exact versions
// (the way internal/replica's applier does, via PutExpireVer); after the
// primary dies and Promote flips ownership, every gets returns the
// pre-failover version and a CAS against it still lands. If promotion
// re-inserted values with fresh versions, every client holding a token
// across the failover would spuriously conflict.
func TestPromotePreservesRMWVersions(t *testing.T) {
	const nodes, keys = 3, 120
	type member struct {
		srv   interface{ Close() error }
		table *lockhash.Table
	}
	addrs := make([]string, nodes)
	members := make(map[string]member, nodes)
	for i := 0; i < nodes; i++ {
		srv, table := startReplNode(t)
		addrs[i] = srv.Addr()
		members[srv.Addr()] = member{srv: srv, table: table}
	}

	c, err := client.New(client.Config{Nodes: addrs, DownBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	vals, vers := seedVersioned(t, c, keys)

	// Stage what internal/replica maintains continuously — the standby
	// holds each entry with the primary's version, not a fresh one.
	ring := c.Ring()
	for k, v := range vals {
		if sb := ring.Standby(cluster.SlotOf(k)); sb != "" {
			members[sb].table.PutTTLVer(k, v, 0, vers[k])
		}
	}

	victim := addrs[0]
	members[victim].srv.Close()

	if err := m.Promote(victim, func(string, []int) error { return nil }); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	verifyVersioned(t, c, vals, vers, "after promotion")
}

// TestMigrationPreservesRMWVersions: slot migration moves entries with
// SetTTLVer carrying the source's version, so a token handed out before
// AddNode must keep working after its slot lands on the new member.
func TestMigrationPreservesRMWVersions(t *testing.T) {
	a := startLockNode(t)
	c, err := client.New(client.Config{Nodes: []string{a.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := New(c, Config{})

	const keys = 200
	vals, vers := seedVersioned(t, c, keys)

	b := startLockNode(t)
	if err := m.AddNode(b.srv.Addr()); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if c.MigratingSlots() != 0 {
		t.Fatalf("windows still open after AddNode: %d", c.MigratingSlots())
	}

	verifyVersioned(t, c, vals, vers, "after migration")

	// And once more through a second topology change, using the tokens
	// refreshed by the post-migration CAS pass.
	cp := startCPNode(t)
	if err := m.AddNode(cp.srv.Addr()); err != nil {
		t.Fatalf("AddNode(cpnode): %v", err)
	}
	verifyVersioned(t, c, vals, vers, "after second migration")

	for _, n := range []*node{a, b, cp} {
		if err := n.check(); err != nil {
			t.Fatalf("table invariants: %v", err)
		}
	}
}
