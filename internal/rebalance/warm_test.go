package rebalance

import (
	"fmt"
	"testing"

	"cphash/internal/client"
	"cphash/internal/kvserver"
	"cphash/internal/lockhash"
	"cphash/internal/partition"
	"cphash/internal/persist"
)

// startPersistedNode brings up a lockhash-backed server whose table is
// wired to a durability pipeline on dir, recovering whatever state a
// previous incarnation left there. addr "" picks a fresh port; a warm
// restart passes the previous incarnation's address so the ring
// placement is unchanged.
func startPersistedNode(t *testing.T, dir, addr string) *node {
	t.Helper()
	pipe, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    16,
		CapacityBytes: 8 << 20,
		Sink:          func(i int) partition.ChangeSink { return pipe.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SetSource(persist.LockHashSource(table))
	if _, err := persist.RestoreLockHash(pipe, table); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       addr,
		Workers:    1,
		NewBackend: kvserver.NewLockHashBackend(table),
		Persist:    pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &node{srv: srv, check: table.CheckInvariants}
}

// TestWarmRestartSameAddrZeroMisses: a persisted member of a live
// cluster stops and restarts from its durability directory under the
// same address; afterwards the whole reference set reads back with zero
// loss and zero migration traffic — the restart-warm rejoin that
// replaces PR 3's stream-everything cold path for clean restarts.
func TestWarmRestartSameAddrZeroMisses(t *testing.T) {
	dir := t.TempDir()
	a := startLockNode(t)
	b := startPersistedNode(t, dir, "")
	bAddr := b.srv.Addr()

	c, err := client.New(client.Config{Nodes: []string{a.srv.Addr(), bAddr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const nKeys, nStr = 400, 40
	seedData(t, c, nKeys, nStr)

	// Stop B gracefully (queues quiesced, WAL flushed) and bring it back
	// from disk under the same address, so ring placement is untouched.
	if err := b.srv.Close(); err != nil {
		t.Fatal(err)
	}
	startPersistedNode(t, dir, bAddr)

	// No migration ran, no ring change happened — and nothing is lost:
	// a full read-back (which would miss on any unrecovered key) and the
	// placement scan both hold.
	verifyData(t, c, nKeys, nStr, "after warm restart")
	verifyPlacement(t, c, "after warm restart")
}

// TestAddNodeWarmClosesWindowsWithoutStreaming: a node that restarts
// warm from disk under its old address rejoins a coordinator's ring via
// AddNodeWarm — every moved slot settles instantly, nothing streams,
// and the joiner serves its slots' keys from its recovered table.
func TestAddNodeWarmClosesWindowsWithoutStreaming(t *testing.T) {
	dir := t.TempDir()

	// Incarnation 1: the node is the whole cluster; the full reference
	// set lands (durably) on it.
	b := startPersistedNode(t, dir, "")
	bAddr := b.srv.Addr()
	c1, err := client.New(client.Config{Nodes: []string{bAddr}})
	if err != nil {
		t.Fatal(err)
	}
	const nKeys, nStr = 300, 30
	seedData(t, c1, nKeys, nStr)
	c1.Close()
	if err := b.srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2 under the same address, next to a fresh empty node.
	a := startLockNode(t)
	c2, err := client.New(client.Config{Nodes: []string{a.srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	startPersistedNode(t, dir, bAddr)

	migr := New(c2, Config{})
	if err := migr.AddNodeWarm(bAddr); err != nil {
		t.Fatal(err)
	}
	st := migr.Stats()
	if st.Entries != 0 || st.Replayed != 0 {
		t.Fatalf("warm join streamed %d entries (%d replayed); want none", st.Entries, st.Replayed)
	}
	if st.SlotsTotal == 0 || st.SlotsDone != st.SlotsTotal {
		t.Fatalf("warm join left windows open: done %d of %d", st.SlotsDone, st.SlotsTotal)
	}
	if c2.MigratingSlots() != 0 {
		t.Fatalf("dual-read windows still open: %d", c2.MigratingSlots())
	}

	// Every key the ring routes to the warm joiner must hit from its
	// recovered table — zero misses for non-expired keys.
	ring := c2.Ring()
	hits := 0
	for k := uint64(0); k < nKeys; k++ {
		if ring.NodeOf(k) != bAddr {
			continue
		}
		v, found, err := c2.Get(k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		if !found {
			t.Fatalf("warm joiner missed key %d it owns", k)
		}
		if want := fmt.Sprintf("value-%d", k); string(v) != want {
			t.Fatalf("key %d: %q, want %q", k, v, want)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("ring routed no keys to the joiner; test is vacuous")
	}
}
