package replica

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/obs"
	"cphash/internal/persist"
	"cphash/internal/protocol"
)

// FollowerConfig parameterizes one replication link (this node following
// one primary for a set of slots).
type FollowerConfig struct {
	// Source is the primary's replication address (Source.Addr()).
	Source string
	// Name identifies this follower in the primary's peer status
	// (conventionally the follower's serving address).
	Name string
	// Slots is the subscribed slot set; nil subscribes to everything.
	Slots *protocol.SlotSet
	// Apply receives the replicated records.
	Apply Applier
	// DialTimeout bounds connection attempts (default 2s).
	DialTimeout time.Duration
	// Dial overrides connection establishment (nil = net.DialTimeout).
	// Fault harnesses install chaos.Director.Dialer(Name) here so
	// partition and slow-link rules reach the replication wire.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// ReadTimeout declares the link dead after this much silence —
	// heartbeats arrive every Source Heartbeat, so several multiples of
	// that (default 10s).
	ReadTimeout time.Duration
	// Backoff is the reconnect backoff base, doubled per consecutive
	// failure up to BackoffMax and jittered into [d/2, d] — the same
	// scheme as the client breaker, so the followers of a restarted
	// source don't redial in lockstep (default 100ms).
	Backoff time.Duration
	// BackoffMax caps the doubled backoff (default 32× Backoff).
	BackoffMax time.Duration
	// Clock supplies "now" for staleness computation (nil = wall clock);
	// it must agree with the Source's clock.
	Clock func() time.Time

	// rnd draws the jitter (tests pin it; nil = math/rand).
	rnd func(int64) int64
}

// backoffFor returns the delay before the reconnect attempt following
// `streak` consecutive failed sessions: Backoff doubled per failure up
// to BackoffMax, then jittered into [d/2, d].
func (c *FollowerConfig) backoffFor(streak int) time.Duration {
	d := c.Backoff
	for i := 0; i < streak && d < c.BackoffMax; i++ {
		d *= 2
	}
	if d > c.BackoffMax {
		d = c.BackoffMax
	}
	half := int64(d / 2)
	return time.Duration(half + c.rnd(half+1))
}

func (c *FollowerConfig) setDefaults() error {
	if c.Source == "" {
		return fmt.Errorf("replica: FollowerConfig.Source is required")
	}
	if c.Apply == nil {
		return fmt.Errorf("replica: FollowerConfig.Apply is required")
	}
	if len(c.Name) > 255 {
		return fmt.Errorf("replica: FollowerConfig.Name too long")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 32 * c.Backoff
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.rnd == nil {
		c.rnd = rand.Int63n
	}
	return nil
}

// FollowerStatus snapshots one link for /replication and the lag gates.
type FollowerStatus struct {
	Source      string `json:"source"`
	Connected   bool   `json:"connected"`
	Synced      bool   `json:"synced"` // initial sync done on the current connection
	AppliedSeq  uint64 `json:"appliedSeq"`
	StalenessMS int64  `json:"stalenessMs"` // -1 until the first sync completes
	Syncs       int64  `json:"syncs"`
	Resumes     int64  `json:"resumes"` // warm reconnects: sessions resumed with zero sync entries
	Frames      int64  `json:"frames"`
	Records     int64  `json:"records"`
}

// Follower maintains one replication link: dial, handshake, initial
// sync, tail apply — reconnecting with backoff for as long as it lives.
// Every record is applied before its frame is acknowledged, so the
// primary's acked watermark never runs ahead of the follower's table.
type Follower struct {
	cfg FollowerConfig

	mu     sync.Mutex
	conn   net.Conn
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup

	connected  atomic.Bool
	synced     atomic.Bool
	everSynced atomic.Bool
	appliedSeq atomic.Uint64
	appliedTs  atomic.Int64 // primary-clock nanos of the last applied frame
	syncs      atomic.Int64
	resumes    atomic.Int64
	frames     atomic.Int64
	records    atomic.Int64

	// lastSession is the source session id of the previous connection
	// (run-goroutine only). A reply carrying a different id means a new
	// Source instance with a fresh sequence space, so the applied
	// watermark from the old space is discarded rather than left to
	// poison the monotonic guard — or a later resume request.
	lastSession uint64
	// syncedSession is the session in which the last sync actually
	// COMPLETED (run-goroutine only). everSynced alone is not a resume
	// certificate: after a source restart appliedSeq resets to 0, and if
	// the full resync that follows is cut short before sync-done,
	// (newSession, 0) would otherwise be presented — and granted — as a
	// resume, marking a follower synced that never received the durable
	// prefix. Resume is requested only when syncedSession == lastSession.
	syncedSession uint64
}

// StartFollower validates cfg and starts the link's goroutine.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, stop: make(chan struct{})}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Source returns the primary replication address this link follows.
func (f *Follower) Source() string { return f.cfg.Source }

// Status snapshots the link.
func (f *Follower) Status() FollowerStatus {
	st := FollowerStatus{
		Source:      f.cfg.Source,
		Connected:   f.connected.Load(),
		Synced:      f.synced.Load(),
		AppliedSeq:  f.appliedSeq.Load(),
		StalenessMS: -1,
		Syncs:       f.syncs.Load(),
		Resumes:     f.resumes.Load(),
		Frames:      f.frames.Load(),
		Records:     f.records.Load(),
	}
	if d, ok := f.Staleness(); ok {
		st.StalenessMS = d.Milliseconds()
	}
	return st
}

// Collect emits the link's gauges and counters; labels should already
// carry a source label (obs.WithLabel over the instance set).
func (f *Follower) Collect(e *obs.Expo, labels string) {
	st := f.Status()
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	e.Gauge("cphash_follower_connected", "Whether the replication link is up (1 = yes).", labels, b2f(st.Connected))
	e.Gauge("cphash_follower_synced", "Whether the current connection finished its initial sync (1 = yes).", labels, b2f(st.Synced))
	e.Gauge("cphash_follower_applied_seq", "Highest applied replication seq.", labels, float64(st.AppliedSeq))
	e.Gauge("cphash_follower_staleness_ms", "Applied-state staleness vs the primary clock (-1 before the first sync).", labels, float64(st.StalenessMS))
	e.Counter("cphash_follower_syncs_total", "Initial syncs completed over the link's lifetime.", labels, st.Syncs)
	e.Counter("cphash_follower_frames_total", "Replication frames applied.", labels, st.Frames)
	e.Counter("cphash_follower_records_total", "Replicated records applied.", labels, st.Records)
}

// Staleness reports how far behind the primary's clock the applied state
// is: now minus the primary timestamp of the last applied frame. ok is
// false until the first initial sync has completed; after a disconnect
// the staleness keeps growing, which is exactly what a follower-read
// gate wants to see.
func (f *Follower) Staleness() (time.Duration, bool) {
	if !f.everSynced.Load() {
		return 0, false
	}
	ts := f.appliedTs.Load()
	return time.Duration(f.cfg.Clock().UnixNano() - ts), true
}

// WaitDisconnected polls until the link is down (nothing more will be
// applied: records apply inline before the next read) or the timeout
// elapses, reporting whether it disconnected. Promotion uses it to
// confirm the watermark after a primary death before closing the
// dual-read window.
func (f *Follower) WaitDisconnected(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for f.connected.Load() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Close stops the link. When it returns, every fully received frame has
// been applied and no further records will be (a partially received
// frame is discarded whole — it was never acknowledged). Idempotent.
func (f *Follower) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	close(f.stop)
	f.wg.Wait()
}

// run is the link goroutine: dial/resync/apply until closed.
func (f *Follower) run() {
	defer f.wg.Done()
	streak := 0 // consecutive failed sessions
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		var conn net.Conn
		var err error
		if f.cfg.Dial != nil {
			conn, err = f.cfg.Dial("tcp", f.cfg.Source, f.cfg.DialTimeout)
		} else {
			conn, err = net.DialTimeout("tcp", f.cfg.Source, f.cfg.DialTimeout)
		}
		if err == nil {
			syncedBefore := f.syncs.Load() + f.resumes.Load()
			f.mu.Lock()
			if f.closed {
				f.mu.Unlock()
				conn.Close()
				return
			}
			f.conn = conn
			f.mu.Unlock()
			serr := f.session(conn)
			f.connected.Store(false)
			f.synced.Store(false)
			f.mu.Lock()
			f.conn = nil
			f.mu.Unlock()
			conn.Close()
			if serr == nil || isClosing(serr) || f.syncs.Load()+f.resumes.Load() > syncedBefore {
				// Deliberate teardown, or a session that got as far as a
				// completed sync: not a failure streak.
				streak = 0
				continue
			}
		}
		streak++
		select {
		case <-f.stop:
			return
		case <-time.After(f.cfg.backoffFor(streak - 1)):
		}
	}
}

// isClosing reports whether err is the local teardown of our own
// connection (Close racing the session), as opposed to a link failure.
// errors.Is sees through the net.OpError wrapping; matching the error
// string does not survive wrapping or rewording.
func isClosing(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// session runs one connection: handshake (requesting a warm resume of
// the previous session when this follower has ever synced), then apply
// frames until the connection dies.
func (f *Follower) session(conn net.Conn) error {
	conn.SetWriteDeadline(time.Now().Add(f.cfg.DialTimeout))
	hello := make([]byte, 0, len(replMagic)+1+len(f.cfg.Name)+protocol.SlotCount/8+helloResumeLen)
	hello = append(hello, replMagic...)
	hello = append(hello, byte(len(f.cfg.Name)))
	hello = append(hello, f.cfg.Name...)
	var set protocol.SlotSet
	if f.cfg.Slots != nil {
		set = *f.cfg.Slots
	} else {
		for i := range set {
			set[i] = 0xff
		}
	}
	hello = append(hello, set[:]...)
	// Resume is requested only when the last COMPLETED sync happened in
	// the session being reconnected to: appliedSeq is a valid certificate
	// of "holds everything through seq" only for that session's sequence
	// space. A sync that started under a newer session but was cut short
	// leaves syncedSession behind lastSession, so no resume is requested
	// and the full sync reruns. lastSession 0 never matches.
	var resumeSession, resumeSeq uint64
	if f.everSynced.Load() && f.syncedSession == f.lastSession {
		resumeSession, resumeSeq = f.lastSession, f.appliedSeq.Load()
	}
	hello = binary.LittleEndian.AppendUint64(hello, resumeSession)
	hello = binary.LittleEndian.AppendUint64(hello, resumeSeq)
	if _, err := conn.Write(hello); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(f.cfg.DialTimeout))
	br := bufio.NewReaderSize(conn, 256<<10)
	var reply [replyLen]byte
	if _, err := io.ReadFull(br, reply[:]); err != nil {
		return err
	}
	if string(reply[:len(replMagic)]) != replMagic {
		return fmt.Errorf("replica: bad handshake reply")
	}
	session := binary.LittleEndian.Uint64(reply[len(replMagic)+1:])
	if session != f.lastSession {
		// A different Source instance numbers records from 1 again; the
		// old watermark means nothing in the new sequence space and must
		// not gate the monotonic update below or seed a future resume.
		f.appliedSeq.Store(0)
		f.lastSession = session
	}
	f.connected.Store(true)

	aw := bufio.NewWriterSize(conn, 4<<10)
	var hdr [frameHeaderLen]byte
	var ack [ackLen]byte
	ack[0] = ackByte
	comp := make([]byte, 0, 64<<10)
	body := make([]byte, 0, 64<<10)
	cr := &byteReader{}
	fr := flate.NewReader(cr)
	// No acks are sent until the sync-done frame has been applied: the
	// first ack a source ever receives therefore certifies the whole
	// initial sync, which is what lets its PeerStatus.Synced (and an
	// empty-tail watermark) mean "the follower HAS this data", not "the
	// follower has been mailed this data".
	acking := false
	for {
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err
		}
		typ := hdr[0]
		seq := binary.LittleEndian.Uint64(hdr[1:9])
		ts := int64(binary.LittleEndian.Uint64(hdr[9:17]))
		ulen := binary.LittleEndian.Uint32(hdr[17:21])
		clen := binary.LittleEndian.Uint32(hdr[21:25])
		if ulen > maxFrameLen || clen > maxFrameLen {
			return frameError("frame length", max32(ulen, clen), maxFrameLen)
		}
		if clen > 0 {
			if cap(comp) < int(clen) {
				comp = make([]byte, clen)
			}
			comp = comp[:clen]
			if _, err := io.ReadFull(br, comp); err != nil {
				return err
			}
			if cap(body) < int(ulen) {
				body = make([]byte, ulen)
			}
			body = body[:ulen]
			cr.b, cr.i = comp, 0
			if err := fr.(flate.Resetter).Reset(cr, nil); err != nil {
				return err
			}
			if _, err := io.ReadFull(fr, body); err != nil {
				return fmt.Errorf("replica: inflating frame: %w", err)
			}
		} else {
			body = body[:0]
		}
		switch typ {
		case frameData:
			if err := f.applyBody(body); err != nil {
				return err
			}
		case frameSyncDone:
			f.synced.Store(true)
			f.everSynced.Store(true)
			f.syncedSession = f.lastSession
			f.syncs.Add(1)
			acking = true
		case frameResumeDone:
			f.synced.Store(true)
			f.everSynced.Store(true)
			f.syncedSession = f.lastSession
			f.resumes.Add(1)
			acking = true
		case frameHeartbeat:
			// watermark + timestamp only
		default:
			return fmt.Errorf("replica: unknown frame type %q", typ)
		}
		f.frames.Add(1)
		if seq > f.appliedSeq.Load() {
			f.appliedSeq.Store(seq)
		}
		f.appliedTs.Store(ts)
		if !acking {
			continue
		}
		binary.LittleEndian.PutUint64(ack[1:9], seq)
		conn.SetWriteDeadline(time.Now().Add(f.cfg.ReadTimeout))
		if _, err := aw.Write(ack[:]); err != nil {
			return err
		}
		if err := aw.Flush(); err != nil {
			return err
		}
	}
}

// applyBody replays one 'D' body through the applier, flushing at the
// end so the subsequent ack means "applied", not "received". Flush runs
// exactly once per frame even on a decode or apply error, so appliers
// that acquire per-frame resources on the first Apply (e.g. a lock
// serializing several links over one table client) always settle.
func (f *Follower) applyBody(body []byte) (err error) {
	defer func() {
		if ferr := f.cfg.Apply.Flush(); err == nil {
			err = ferr
		}
	}()
	n := 0
	for len(body) >= recFixedLen {
		op := body[0]
		key := binary.LittleEndian.Uint64(body[1:9])
		exp := int64(binary.LittleEndian.Uint64(body[9:17]))
		ver := binary.LittleEndian.Uint64(body[17:25])
		vlen := binary.LittleEndian.Uint32(body[25:29])
		body = body[recFixedLen:]
		if uint32(len(body)) < vlen {
			return fmt.Errorf("replica: truncated record in frame")
		}
		if aerr := f.cfg.Apply.Apply(persist.Op(op), key, exp, ver, body[:vlen]); aerr != nil {
			return aerr
		}
		body = body[vlen:]
		n++
	}
	if len(body) != 0 {
		return fmt.Errorf("replica: trailing bytes in frame body")
	}
	f.records.Add(int64(n))
	return nil
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// byteReader is a reusable no-copy reader over a byte slice (bytes.Reader
// without the interface baggage flate does not need). Reused per frame by
// pointing b at the next compressed body and zeroing i.
type byteReader struct {
	b []byte
	i int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	b := r.b[r.i]
	r.i++
	return b, nil
}
