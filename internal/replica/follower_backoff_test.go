package replica

import (
	"testing"
	"time"

	"cphash/internal/persist"
)

// TestFollowerBackoffSchedule pins the reconnect schedule: Backoff
// doubled per consecutive failure up to BackoffMax, each delay jittered
// into [d/2, d]. The jitter draw is injected, so the bounds are exact.
func TestFollowerBackoffSchedule(t *testing.T) {
	cfg := FollowerConfig{
		Source:  "x",
		Apply:   nopApplier{},
		Backoff: 100 * time.Millisecond,
	}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.BackoffMax != 32*cfg.Backoff {
		t.Fatalf("default BackoffMax = %v, want 32×Backoff", cfg.BackoffMax)
	}

	atMin := func(n int64) int64 { return 0 }
	atMax := func(n int64) int64 { return n - 1 }

	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond, // cap: 32×100ms
		3200 * time.Millisecond, // stays capped
		3200 * time.Millisecond,
	}
	for streak, d := range want {
		cfg.rnd = atMin
		if got := cfg.backoffFor(streak); got != d/2 {
			t.Fatalf("streak %d with zero jitter: %v, want %v", streak, got, d/2)
		}
		cfg.rnd = atMax
		if got := cfg.backoffFor(streak); got != d {
			t.Fatalf("streak %d with max jitter: %v, want %v", streak, got, d)
		}
	}

	// Every real draw lands in [d/2, d]: no follower waits less than half
	// the nominal delay, and two followers with the same streak do not
	// redial in lockstep unless the draws collide.
	cfg.rnd = nil
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	for streak := 0; streak < 8; streak++ {
		nominal := want[streak]
		for i := 0; i < 200; i++ {
			got := cfg.backoffFor(streak)
			if got < nominal/2 || got > nominal {
				t.Fatalf("streak %d: draw %v outside [%v, %v]", streak, got, nominal/2, nominal)
			}
		}
	}

	// An explicit cap overrides the 32× default.
	cfg = FollowerConfig{
		Source:     "x",
		Apply:      nopApplier{},
		Backoff:    100 * time.Millisecond,
		BackoffMax: 250 * time.Millisecond,
	}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	cfg.rnd = atMax
	for streak, d := range []time.Duration{100, 200, 250, 250} {
		if got := cfg.backoffFor(streak); got != d*time.Millisecond {
			t.Fatalf("capped streak %d: %v, want %v", streak, got, d*time.Millisecond)
		}
	}
}

type nopApplier struct{}

func (nopApplier) Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error {
	return nil
}
func (nopApplier) Flush() error { return nil }
