package replica

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"cphash/internal/protocol"
)

// scriptedSource is a fake replication source that accepts one
// connection at a time and hands the test full control of the replies,
// so session-boundary edges (a restart mid-sync) can be scripted
// exactly where a real Source cannot be interrupted deterministically.
type scriptedSource struct {
	t  *testing.T
	ln net.Listener
}

// helloReq is the parsed resume trailer of a follower hello.
type helloReq struct {
	conn          net.Conn
	resumeSession uint64
	resumeSeq     uint64
}

func newScriptedSource(t *testing.T) *scriptedSource {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return &scriptedSource{t: t, ln: ln}
}

// accept takes the next connection and reads its hello.
func (s *scriptedSource) accept() helloReq {
	s.t.Helper()
	conn, err := s.ln.Accept()
	if err != nil {
		s.t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var fixed [len(replMagic) + 1]byte
	if _, err := io.ReadFull(conn, fixed[:]); err != nil {
		s.t.Fatal(err)
	}
	if string(fixed[:len(replMagic)]) != replMagic {
		s.t.Fatalf("bad hello magic %q", fixed[:len(replMagic)])
	}
	rest := make([]byte, int(fixed[len(replMagic)])+protocol.SlotCount/8+helloResumeLen)
	if _, err := io.ReadFull(conn, rest); err != nil {
		s.t.Fatal(err)
	}
	tr := rest[len(rest)-helloResumeLen:]
	return helloReq{
		conn:          conn,
		resumeSession: binary.LittleEndian.Uint64(tr[0:8]),
		resumeSeq:     binary.LittleEndian.Uint64(tr[8:16]),
	}
}

// reply completes the handshake under the given session id (never
// granting a resume — the scripted scenarios deny on purpose).
func (h helloReq) reply(t *testing.T, session uint64) {
	t.Helper()
	out := make([]byte, 0, replyLen)
	out = append(out, replMagic...)
	out = append(out, 0)
	out = binary.LittleEndian.AppendUint64(out, session)
	if _, err := h.conn.Write(out); err != nil {
		t.Fatal(err)
	}
}

// syncDone sends the sync-done frame at seq and waits for its ack.
func (h helloReq) syncDone(t *testing.T, seq uint64) {
	t.Helper()
	var hdr [frameHeaderLen]byte
	putFrameHeader(hdr[:], frameSyncDone, seq, time.Now().UnixNano(), 0, 0)
	if _, err := h.conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	h.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var ack [ackLen]byte
	if _, err := io.ReadFull(h.conn, ack[:]); err != nil {
		t.Fatal(err)
	}
	if ack[0] != ackByte || binary.LittleEndian.Uint64(ack[1:9]) != seq {
		t.Fatalf("bad ack %v", ack)
	}
}

// TestNoResumeAfterSessionChangeInterruptedSync pins the resume
// certificate across a source restart: a follower whose full resync
// under the NEW session is cut short before sync-done must NOT present
// (newSession, 0) as a resume on its next reconnect — everSynced was
// earned under the OLD session, and a granted resume here would mark a
// follower synced that never received the new session's durable prefix
// (acked-write loss on a later promotion).
func TestNoResumeAfterSessionChangeInterruptedSync(t *testing.T) {
	src := newScriptedSource(t)
	f, err := StartFollower(FollowerConfig{
		Source:  src.ln.Addr().String(),
		Name:    "f",
		Apply:   nopApplier{},
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Connection 1, session 100: a clean first sync at seq 7.
	h := src.accept()
	if h.resumeSession != 0 {
		t.Fatalf("first hello requested resume of session %d", h.resumeSession)
	}
	h.reply(t, 100)
	h.syncDone(t, 7)
	h.conn.Close()

	// Connection 2: the follower presents its completed session — then
	// the "restarted" source answers with session 200 and dies before
	// sync-done, leaving the resync incomplete.
	h = src.accept()
	if h.resumeSession != 100 || h.resumeSeq != 7 {
		t.Fatalf("hello after clean sync = (%d, %d), want (100, 7)", h.resumeSession, h.resumeSeq)
	}
	h.reply(t, 200)
	h.conn.Close()

	// Connection 3: no completed sync under session 200 exists, so no
	// resume may be requested — (200, 0) here is the bogus certificate.
	h = src.accept()
	if h.resumeSession != 0 || h.resumeSeq != 0 {
		t.Fatalf("hello after interrupted resync = (%d, %d), want (0, 0)", h.resumeSession, h.resumeSeq)
	}
	h.reply(t, 200)
	h.syncDone(t, 9)
	h.conn.Close()

	// Connection 4: the sync completed under 200, so resume is back on.
	h = src.accept()
	if h.resumeSession != 200 || h.resumeSeq != 9 {
		t.Fatalf("hello after completed resync = (%d, %d), want (200, 9)", h.resumeSession, h.resumeSeq)
	}
	h.conn.Close()
}
