package replica_test

import (
	"net"
	"testing"
	"time"

	"cphash/internal/replica"
)

// TestStalledHandshakeTimesOut proves HandshakeTimeout releases a serve
// goroutine whose peer connects and then goes silent: the source must
// hang up within the configured bound, and the stalled dialer must
// never appear in the peer set.
func TestStalledHandshakeTimesOut(t *testing.T) {
	n := startNode(t, &replica.SourceConfig{HandshakeTimeout: 150 * time.Millisecond})

	conn, err := net.Dial("tcp", n.src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing: the hello never arrives. The source's handshake
	// deadline must cut the connection.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if nr, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatalf("source sent %d bytes to an empty handshake", nr)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("stalled handshake held the connection %v (timeout was 150ms)", elapsed)
	}
	if elapsed < 100*time.Millisecond {
		t.Fatalf("connection cut after %v, before the handshake deadline", elapsed)
	}
	if peers := n.src.Status(); len(peers) != 0 {
		t.Fatalf("stalled dialer reached the peer set: %+v", peers)
	}

	// The listener must still serve real handshakes afterwards.
	f := n.follow(n.src.Addr(), nil, 10*time.Millisecond)
	defer f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := n.src.Status(); len(st) == 1 && st[0].Synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never synced after the stalled handshake: %+v", n.src.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHandshakeTimeoutConfigurable pins that the knob actually moves:
// a generous timeout keeps a slow-but-legitimate hello alive past the
// old hardcoded bound's order of magnitude (scaled down for test time).
func TestHandshakeTimeoutConfigurable(t *testing.T) {
	n := startNode(t, &replica.SourceConfig{HandshakeTimeout: 2 * time.Second})

	conn, err := net.Dial("tcp", n.src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Stall longer than the other test's 150ms, then complete a real
	// handshake via a Follower on a fresh connection — this connection
	// just proves the 2s window tolerated the stall.
	time.Sleep(400 * time.Millisecond)
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("unexpected reply on a half-open handshake")
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("source hung up inside a 2s handshake window after 400ms: %v", err)
	}
}
