// Package replica adds per-slot primary→follower replication on top of
// the durability pipeline (internal/persist): recovery, continuously.
//
// PR 5 left every record of a table totally ordered in a segmented WAL;
// a replica is therefore nothing more than a remote party that first
// replays the durable prefix (snapshot + sealed segments, exactly what
// Recover does locally) and then keeps applying the live tail. The
// Source side attaches a persist.TailSink to its pipeline and fans the
// tail into a bounded in-memory backlog; each connected follower gets
// the durable prefix streamed first (bounded by a RollAll barrier, so
// the two phases meet with overlap, never a gap) and the backlog after.
// Records replay idempotently — key → partition → one appender → one
// stream means per-key FIFO survives the trip — so the overlap is
// harmless, last writer wins.
//
// Placement rides the rendezvous continuum: a slot's replicas live on
// cluster.Ring.Replicas(slot, d), the rank-1..d-1 scorers, and removing
// the owner provably shifts every rank up by exactly one — the new owner
// and every new standby already hold the slot. Failover promotion
// (rebalance.Migrator.Promote) is therefore a pure ownership flip — the
// data is already on the new owner — using the migration machinery's
// dual-read window until the follower's watermark is confirmed; the mesh
// then rewires so the new primary re-sources its surviving standbys,
// which reconnect warm via session resume.
//
// # Wire protocol
//
// One TCP connection per (follower, primary) pair, opened by the
// follower to the Source's dedicated replication listener:
//
//	handshake  F→S: magic "CPREPL03" | nameLen (1) | name | slot bitmap (32)
//	                | resumeSession (8 LE) | resumeSeq (8 LE)
//	handshake  S→F: magic "CPREPL03" | flags (1) | session (8 LE)
//	frame      S→F: type (1) | seq (8 LE) | tsNanos (8 LE) | ulen (4 LE) | clen (4 LE) | body
//	ack        F→S: 'A' | seq (8 LE)
//
// resumeSession/resumeSeq ask the source to resume the follower's
// previous session at appliedSeq+1 instead of re-running the initial
// sync: the source grants (reply flags bit 0) iff the session id matches
// its own — sequence numbers are only comparable within one Source
// instance — and the backlog still covers the gap. A granted resume
// streams zero sync entries (a reconnect after a brief blip, or a mesh
// rewire that re-establishes an identical link, is warm); a denied one
// falls back to the full initial sync. resumeSession 0 (a follower that
// never synced) never matches.
//
// Frame types: 'D' carries a flate-compressed batch of records (body is
// clen bytes, inflating to ulen); 'S' marks the end of the initial sync;
// 'R' accepts a resume (the follower is already synced at the frame's
// seq); 'H' is an idle heartbeat. A record inside a 'D' body is
// op (1) | key (8 LE) | expireAt ns (8 LE) | ver (8 LE) | vlen (4 LE) | value
// (CPREPL03 added the CAS version so read-modify-write results replicate
// with stable tokens; CPREPL02 peers are refused at the handshake).
//
// seq on 'D'/'H' frames is the Source's tail sequence covered so far —
// the replication watermark the follower acknowledges; tsNanos is the
// primary's clock at send time, from which the follower derives the
// staleness bound for follower reads. Compression is per frame
// (flate.BestSpeed), so each frame is independently decodable and the
// writer/reader state is reset-reused, allocation-free in steady state.
//
// Catch-up is backlog-only by design (the redis chain-replication
// trade): a follower that falls off the bounded backlog is disconnected
// and performs a full resync on reconnect, which the snapshot+segment
// replay makes proportional to the table size, not the outage length.
package replica

import (
	"encoding/binary"
	"fmt"
	"time"

	"cphash/internal/core"
	"cphash/internal/lockhash"
	"cphash/internal/persist"
)

const (
	replMagic = "CPREPL03"

	frameData       = byte('D')
	frameSyncDone   = byte('S')
	frameResumeDone = byte('R')
	frameHeartbeat  = byte('H')
	ackByte         = byte('A')

	frameHeaderLen = 1 + 8 + 8 + 4 + 4
	ackLen         = 1 + 8

	// helloResumeLen is the trailer of the follower hello: the session id
	// it wants to resume and the seq it has applied through.
	helloResumeLen = 8 + 8
	// replyLen is the source's handshake reply: magic, flags, session id.
	replyLen = len(replMagic) + 1 + 8
	// replyFlagResumed (reply flags bit 0) grants the requested resume.
	replyFlagResumed = byte(1)

	recFixedLen = 1 + 8 + 8 + 8 + 4

	// maxFrameLen rejects absurd lengths before allocating, mirroring the
	// WAL replay guard.
	maxFrameLen = 64 << 20
)

func putFrameHeader(dst []byte, typ byte, seq uint64, ts int64, ulen, clen int) {
	dst[0] = typ
	binary.LittleEndian.PutUint64(dst[1:9], seq)
	binary.LittleEndian.PutUint64(dst[9:17], uint64(ts))
	binary.LittleEndian.PutUint32(dst[17:21], uint32(ulen))
	binary.LittleEndian.PutUint32(dst[21:25], uint32(clen))
}

// appendRecord frames one record into a 'D' body under assembly.
func appendRecord(dst []byte, op byte, key uint64, expireAt int64, ver uint64, value []byte) []byte {
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint64(dst, key)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(expireAt))
	dst = binary.LittleEndian.AppendUint64(dst, ver)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(value)))
	return append(dst, value...)
}

// Applier applies replicated records to the follower's local table. All
// calls happen on the follower's single apply goroutine. Flush is the
// per-frame barrier: record buffers passed to Apply stay valid until the
// next Flush returns, so pipelined appliers may defer completion to it.
type Applier interface {
	Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error
	Flush() error
}

// CoreApplier replays into a CPHASH table through a dedicated client
// handle, pipelining a whole frame between Flushes (the same WaitAll
// discipline persist.RestoreCore uses, minus the per-record round trip).
type CoreApplier struct {
	c     *core.Client
	clock func() int64
	ops   []*core.Op
}

// NewCoreApplier builds an Applier over a CPHASH table's client handle
// clientID, which must be reserved for the applier (the follower applies
// from one goroutine; core client handles are single-goroutine). Expiry
// deadlines are converted to TTLs against clock at apply time, the same
// skew window RestoreCore accepts. Close releases the handle.
func NewCoreApplier(t *core.Table, clientID int, clock func() int64) (*CoreApplier, error) {
	c, err := t.Client(clientID)
	if err != nil {
		return nil, err
	}
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	return &CoreApplier{c: c, clock: clock}, nil
}

func (a *CoreApplier) Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error {
	switch op {
	case persist.OpSet:
		ttl := time.Duration(0)
		if expireAt != 0 {
			ttl = time.Duration(expireAt - a.clock())
			if ttl <= 0 {
				return nil // expired in flight
			}
		}
		a.ops = append(a.ops, a.c.InsertTTLVerAsync(key, value, ttl, ver))
	case persist.OpDelete:
		a.ops = append(a.ops, a.c.DeleteAsync(key))
	}
	return nil
}

func (a *CoreApplier) Flush() error {
	a.c.WaitAll()
	for _, o := range a.ops {
		a.c.Release(o)
	}
	a.ops = a.ops[:0]
	return nil
}

// Close flushes and releases the table client handle.
func (a *CoreApplier) Close() {
	_ = a.Flush()
	a.c.Close()
}

// lockHashApplier replays into a LOCKHASH table, preserving absolute
// deadlines exactly (PutExpire), mirroring persist.RestoreLockHash.
type lockHashApplier struct{ t *lockhash.Table }

// NewLockHashApplier builds an Applier over a LOCKHASH table.
func NewLockHashApplier(t *lockhash.Table) Applier {
	return &lockHashApplier{t: t}
}

func (a *lockHashApplier) Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error {
	switch op {
	case persist.OpSet:
		a.t.PutExpireVer(key, value, expireAt, ver)
	case persist.OpDelete:
		a.t.Delete(key)
	}
	return nil
}

func (a *lockHashApplier) Flush() error { return nil }

// frameError annotates protocol violations so both ends log usable
// diagnoses rather than bare io errors.
func frameError(what string, got, limit uint32) error {
	return fmt.Errorf("replica: %s %d exceeds limit %d", what, got, limit)
}
