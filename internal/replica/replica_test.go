package replica_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cphash/internal/cluster"
	"cphash/internal/lockhash"
	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/protocol"
	"cphash/internal/replica"
)

// node is one lockhash table + pipeline + (optional) replication source,
// the smallest stack the replica machinery runs on.
type node struct {
	t     *testing.T
	table *lockhash.Table
	pipe  *persist.Pipeline
	src   *replica.Source
}

func startNode(t *testing.T, srcCfg *replica.SourceConfig) *node {
	t.Helper()
	pipe, err := persist.Open(persist.Config{
		Dir:     t.TempDir(),
		Policy:  persist.SyncNone,
		Streams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := lockhash.New(lockhash.Config{
		Partitions:    8,
		CapacityBytes: 8 << 20,
		Sink:          func(i int) partition.ChangeSink { return pipe.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SetSource(persist.LockHashSource(table))
	if _, err := persist.RestoreLockHash(pipe, table); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	n := &node{t: t, table: table, pipe: pipe}
	if srcCfg != nil {
		cfg := *srcCfg
		cfg.Pipe = pipe
		if cfg.Addr == "" {
			cfg.Addr = "127.0.0.1:0"
		}
		n.src, err = replica.NewSource(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		if n.src != nil {
			n.src.Close()
		}
		pipe.Close()
	})
	return n
}

func (n *node) follow(source string, slots *protocol.SlotSet, hb time.Duration) *replica.Follower {
	n.t.Helper()
	f, err := replica.StartFollower(replica.FollowerConfig{
		Source:      source,
		Name:        "follower",
		Slots:       slots,
		Apply:       replica.NewLockHashApplier(n.table),
		Backoff:     10 * time.Millisecond,
		ReadTimeout: 20 * hb,
	})
	if err != nil {
		n.t.Fatal(err)
	}
	n.t.Cleanup(f.Close)
	return f
}

// waitAcked polls until the source's tail watermark is acknowledged by
// every connected peer (all replicated writes applied remotely).
func waitAcked(t *testing.T, src *replica.Source, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		tail := src.Tail()
		ok := false
		for _, ps := range src.Status() {
			if ps.Synced && ps.Acked >= tail {
				ok = true
			} else {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watermark not acked: tail=%d status=%+v", tail, src.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReplicateLiveTailAndInitialSync(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})

	// Pre-sync state: written before the follower exists, so it arrives
	// via the initial sync (snapshot/segment replay), not the tail.
	for k := uint64(1); k <= 500; k++ {
		primary.table.Put(k, []byte(fmt.Sprintf("pre-%d", k)))
	}
	primary.table.PutTTL(9001, []byte("ttl-entry"), time.Hour)
	primary.table.Put(9002, []byte("doomed"))
	primary.table.Delete(9002)

	follower := startNode(t, nil)
	fl := follower.follow(primary.src.Addr(), nil, hb)

	// Live tail: written while the follower is attached.
	for k := uint64(1001); k <= 1500; k++ {
		primary.table.Put(k, []byte(fmt.Sprintf("live-%d", k)))
	}
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 5*time.Second)

	for k := uint64(1); k <= 500; k++ {
		if v, ok := follower.table.Get(k, nil); !ok || string(v) != fmt.Sprintf("pre-%d", k) {
			t.Fatalf("key %d: got %q ok=%v", k, v, ok)
		}
	}
	for k := uint64(1001); k <= 1500; k++ {
		if v, ok := follower.table.Get(k, nil); !ok || string(v) != fmt.Sprintf("live-%d", k) {
			t.Fatalf("key %d: got %q ok=%v", k, v, ok)
		}
	}
	if _, ok := follower.table.Get(9002, nil); ok {
		t.Fatal("deleted key resurrected on follower")
	}
	if _, ok := follower.table.Get(9001, nil); !ok {
		t.Fatal("TTL entry missing on follower")
	}
	if d, ok := fl.Staleness(); !ok || d > time.Second {
		t.Fatalf("staleness = %v ok=%v, want fresh", d, ok)
	}
	st := fl.Status()
	if !st.Connected || !st.Synced || st.Records == 0 {
		t.Fatalf("unexpected follower status %+v", st)
	}
}

func TestSlotFilteredReplication(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})
	follower := startNode(t, nil)

	// Subscribe to exactly half the continuum.
	var set protocol.SlotSet
	for s := 0; s < protocol.SlotCount/2; s++ {
		set.Add(s)
	}
	follower.follow(primary.src.Addr(), &set, hb)

	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64() & uint64(partition.MaxKey)
		primary.table.Put(keys[i], []byte(fmt.Sprintf("v-%d", i)))
	}
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 5*time.Second)

	for i, k := range keys {
		_, ok := follower.table.Get(k, nil)
		want := set.Has(cluster.SlotOf(k))
		if ok != want {
			t.Fatalf("key %d (slot %d): present=%v want=%v", k, cluster.SlotOf(k), ok, want)
		}
		_ = i
	}
}

func TestFollowerReconnectsAndResyncs(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})
	follower := startNode(t, nil)

	for k := uint64(1); k <= 100; k++ {
		primary.table.Put(k, []byte("one"))
	}
	fl := follower.follow(primary.src.Addr(), nil, hb)
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 5*time.Second)

	// Kill the source side; the follower must reconnect once a new
	// source (same pipeline, new listener) appears at the same address.
	addr := primary.src.Addr()
	primary.src.Close()
	if !fl.WaitDisconnected(5 * time.Second) {
		t.Fatal("follower did not notice source death")
	}

	// Writes during the outage only reach the follower via resync.
	for k := uint64(101); k <= 200; k++ {
		primary.table.Put(k, []byte("two"))
	}
	primary.pipe.Barrier()

	src2, err := replica.NewSource(replica.SourceConfig{
		Pipe:      primary.pipe,
		Addr:      addr,
		Heartbeat: hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(src2.Close)
	primary.src = src2

	waitAcked(t, primary.src, 10*time.Second)
	for k := uint64(1); k <= 200; k++ {
		if _, ok := follower.table.Get(k, nil); !ok {
			t.Fatalf("key %d missing after resync", k)
		}
	}
	if st := fl.Status(); st.Syncs < 2 {
		t.Fatalf("expected a second initial sync, status %+v", st)
	}
}

func TestBacklogOverrunForcesResync(t *testing.T) {
	hb := 5 * time.Millisecond
	// Tiny backlog: a burst larger than it must disconnect the follower,
	// which then resyncs and converges anyway.
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb, BacklogRecords: 64})
	follower := startNode(t, nil)
	follower.follow(primary.src.Addr(), nil, hb)
	waitAcked(t, primary.src, 5*time.Second)

	for k := uint64(1); k <= 5000; k++ {
		primary.table.Put(k, []byte(fmt.Sprintf("v-%d", k)))
	}
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 10*time.Second)
	for k := uint64(1); k <= 5000; k++ {
		if _, ok := follower.table.Get(k, nil); !ok {
			t.Fatalf("key %d missing after overrun resync", k)
		}
	}
}

func TestStalenessGrowsWhenDisconnected(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})
	follower := startNode(t, nil)
	fl := follower.follow(primary.src.Addr(), nil, hb)
	primary.table.Put(1, []byte("x"))
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 5*time.Second)

	if _, ok := fl.Staleness(); !ok {
		t.Fatal("staleness not available after sync")
	}
	primary.src.Close()
	fl.WaitDisconnected(5 * time.Second)
	d1, _ := fl.Staleness()
	time.Sleep(50 * time.Millisecond)
	d2, _ := fl.Staleness()
	if d2 <= d1 {
		t.Fatalf("staleness did not grow while disconnected: %v then %v", d1, d2)
	}
}

// blipProxy forwards TCP to a destination and can drop every live
// connection at once — a network blip between a follower and a live
// source, as opposed to a source restart.
type blipProxy struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newBlipProxy(t *testing.T, dst string) *blipProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &blipProxy{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", dst)
			if err != nil {
				c.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, c, up)
			p.mu.Unlock()
			go func() { io.Copy(up, c); up.Close(); c.Close() }()
			go func() { io.Copy(c, up); c.Close(); up.Close() }()
		}
	}()
	t.Cleanup(func() { ln.Close(); p.drop() })
	return p
}

func (p *blipProxy) addr() string { return p.ln.Addr().String() }

func (p *blipProxy) drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// TestSessionResumeWarmReconnect proves a reconnect to the SAME source
// is warm: the session resumes at the follower's applied watermark with
// zero sync entries re-streamed, where a source restart (different
// session id) still forces a full resync.
func TestSessionResumeWarmReconnect(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})

	// Synced state established before the follower attaches, so the
	// record count of the initial sync is exact.
	for k := uint64(1); k <= 300; k++ {
		primary.table.Put(k, []byte(fmt.Sprintf("v-%d", k)))
	}
	primary.pipe.Barrier()

	proxy := newBlipProxy(t, primary.src.Addr())
	follower := startNode(t, nil)
	fl := follower.follow(proxy.addr(), nil, hb)
	waitAcked(t, primary.src, 5*time.Second)

	st := fl.Status()
	if st.Syncs != 1 || st.Resumes != 0 || st.Records != 300 {
		t.Fatalf("after initial sync: %+v", st)
	}

	// Blip the link. The follower redials immediately (a session that
	// completed its sync is not a failure streak) and must resume, not
	// resync.
	proxy.drop()
	deadline := time.Now().Add(5 * time.Second)
	for fl.Status().Resumes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no resume after blip: %+v", fl.Status())
		}
		time.Sleep(time.Millisecond)
	}
	for k := uint64(301); k <= 350; k++ {
		primary.table.Put(k, []byte(fmt.Sprintf("v-%d", k)))
	}
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 10*time.Second)

	for k := uint64(1); k <= 350; k++ {
		if _, ok := follower.table.Get(k, nil); !ok {
			t.Fatalf("key %d missing after resume", k)
		}
	}
	st = fl.Status()
	if st.Syncs != 1 || st.Resumes != 1 {
		t.Fatalf("expected a warm resume, got %+v", st)
	}
	// Zero entries re-streamed: only the 50 blip-interval records moved.
	if st.Records != 350 {
		t.Fatalf("records = %d, want 350 (300 synced once + 50 live)", st.Records)
	}
}

// TestPeerWatermarkRetainedAfterDisconnect pins the detector's input
// signal: a dropped peer stays in Peers() as up=false with its last
// acked watermark (so lag grows against the advancing tail), scrapes as
// cphash_replica_peer_up 0, and disappears only on ForgetPeer.
func TestPeerWatermarkRetainedAfterDisconnect(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})
	follower := startNode(t, nil)
	fl := follower.follow(primary.src.Addr(), nil, hb)

	for k := uint64(1); k <= 100; k++ {
		primary.table.Put(k, []byte("x"))
	}
	primary.pipe.Barrier()
	waitAcked(t, primary.src, 5*time.Second)
	tailAtDrop := primary.src.Tail()

	fl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(primary.src.Status()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer did not unregister")
		}
		time.Sleep(time.Millisecond)
	}

	peers := primary.src.Peers()
	if len(peers) != 1 || peers[0].Name != "follower" {
		t.Fatalf("Peers() after drop = %+v", peers)
	}
	if peers[0].Up {
		t.Fatal("dropped peer reported up")
	}
	if peers[0].Acked != tailAtDrop {
		t.Fatalf("retained acked = %d, want %d", peers[0].Acked, tailAtDrop)
	}

	// The tail advances; the retained watermark stands still, so the
	// scraped lag grows — down-and-falling-behind, not a vanished series.
	for k := uint64(101); k <= 150; k++ {
		primary.table.Put(k, []byte("y"))
	}
	primary.pipe.Barrier()
	var buf bytes.Buffer
	e := obs.NewExpo()
	primary.src.Collect(e, obs.Labels("node", "n1"))
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `cphash_replica_peer_up{node="n1",peer="follower"} 0`) {
		t.Fatalf("missing peer_up 0 series in scrape:\n%s", text)
	}
	if !strings.Contains(text, `cphash_replica_lag_records{node="n1",peer="follower"} 50`) {
		t.Fatalf("retained lag not 50 in scrape:\n%s", text)
	}

	primary.src.ForgetPeer("follower")
	if got := primary.src.Peers(); len(got) != 0 {
		t.Fatalf("Peers() after ForgetPeer = %+v", got)
	}
}

// slowApplier throttles record application to hold a follower in its
// initial sync long enough for Close to race it.
type slowApplier struct {
	inner replica.Applier
	delay time.Duration
}

func (a *slowApplier) Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error {
	time.Sleep(a.delay)
	return a.inner.Apply(op, key, expireAt, ver, value)
}

func (a *slowApplier) Flush() error { return a.inner.Flush() }

// TestCloseDrainsMidSyncPeer pins the failover-edge drain: a graceful
// Close must wait for a live peer still running its initial sync —
// exactly the state a new primary's standbys are in right after a
// promotion — instead of cutting it loose with acked writes stranded on
// the closing node.
func TestCloseDrainsMidSyncPeer(t *testing.T) {
	hb := 10 * time.Millisecond
	primary := startNode(t, &replica.SourceConfig{Heartbeat: hb})
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		primary.table.Put(k, []byte(fmt.Sprintf("v-%d", k)))
	}
	primary.pipe.Barrier()

	follower := startNode(t, nil)
	fl, err := replica.StartFollower(replica.FollowerConfig{
		Source:      primary.src.Addr(),
		Name:        "mid-sync",
		Apply:       &slowApplier{inner: replica.NewLockHashApplier(follower.table), delay: 50 * time.Microsecond},
		Backoff:     10 * time.Millisecond,
		ReadTimeout: 20 * hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)

	deadline := time.Now().Add(5 * time.Second)
	for !fl.Status().Connected {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected")
		}
		time.Sleep(time.Millisecond)
	}
	// The follower is connected and (at 50µs per record over 2000
	// records) still mid-sync. A graceful close must drain it.
	primary.src.Close()
	for k := uint64(1); k <= n; k++ {
		if _, ok := follower.table.Get(k, nil); !ok {
			t.Fatalf("key %d lost: Close cut the mid-sync peer", k)
		}
	}
	if st := fl.Status(); st.Syncs != 1 {
		t.Fatalf("sync did not complete before close: %+v", st)
	}
}
