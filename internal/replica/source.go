package replica

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cphash/internal/cluster"
	"cphash/internal/obs"
	"cphash/internal/persist"
	"cphash/internal/protocol"
)

// SourceConfig parameterizes the primary side of replication.
type SourceConfig struct {
	// Pipe is the primary's running durability pipeline; the source
	// attaches its tail fanout to it and drives RollAll/ReplayDurable for
	// each follower's initial sync.
	Pipe *persist.Pipeline
	// Addr is the replication listen address (e.g. "127.0.0.1:0" — the
	// bound address is available from Addr() afterwards). Replication
	// runs on its own listener so follower traffic never contends with
	// the request wire protocol's accept loop.
	Addr string
	// Heartbeat is the idle cadence at which followers receive watermark
	// + timestamp frames (default 100ms); it bounds follower-read
	// staleness on an idle primary.
	Heartbeat time.Duration
	// WriteTimeout disconnects a follower that stops draining its
	// connection (default 10s); it will resync when it recovers.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds each side of the hello exchange: reading
	// the follower's hello and writing the reply (default 5s). A dialer
	// that connects and stalls — a port scanner, a partitioned peer —
	// holds a serve goroutine no longer than this.
	HandshakeTimeout time.Duration
	// BacklogRecords bounds the in-memory tail backlog (default 65536).
	// A follower that falls more than this many records behind is
	// disconnected and must full-resync — catch-up storage is the WAL's
	// job, not the backlog's.
	BacklogRecords int
	// BatchBytes bounds the records packed into one 'D' frame (default
	// 32 KiB before compression).
	BatchBytes int
	// Clock supplies frame timestamps (nil = wall clock). Followers
	// compute staleness against it, so primary and follower clocks must
	// agree to within the staleness tolerance.
	Clock func() time.Time
	// Listen overrides listener creation (nil = net.Listen). Fault
	// harnesses install chaos.Director.Listen here so partition and
	// slow-link rules reach the replication wire.
	Listen func(network, addr string) (net.Listener, error)
}

func (c *SourceConfig) setDefaults() error {
	if c.Pipe == nil {
		return fmt.Errorf("replica: SourceConfig.Pipe is required")
	}
	if c.Addr == "" {
		return fmt.Errorf("replica: SourceConfig.Addr is required")
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.BacklogRecords <= 0 {
		c.BacklogRecords = 65536
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 32 << 10
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// blEntry is one backlog slot; rec (the staged WAL payload, copied) is
// reused in place across generations, so steady-state appends allocate
// nothing once every slot has warmed to the workload's record size. at
// stamps the append (source-clock nanos) so a scrape can turn a peer's
// record lag into a wall-time lag.
type blEntry struct {
	seq uint64
	at  int64
	rec []byte
}

// backlog is the bounded tail ring: TailRecord appends under the mutex
// (persister goroutines, one per WAL stream), peer senders copy out
// under it. Sequence numbers start at 1 and never wrap in practice.
type backlog struct {
	mu   sync.Mutex
	buf  []blEntry
	next uint64
}

// append stamps a record with the next tail seq and stores it.
func (b *backlog) append(payload []byte, at int64) {
	b.mu.Lock()
	e := &b.buf[b.next%uint64(len(b.buf))]
	e.seq = b.next
	e.at = at
	e.rec = append(e.rec[:0], payload...)
	b.next++
	b.mu.Unlock()
}

// tail returns the last assigned seq (0 = nothing yet).
func (b *backlog) tail() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next - 1
}

// covers reports whether streaming can start at seq from: every record in
// [from, tail] is still retained (from == next means nothing to stream,
// which trivially covers).
func (b *backlog) covers(from uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	oldest := uint64(1)
	if n := uint64(len(b.buf)); b.next > n {
		oldest = b.next - n
	}
	return from >= oldest && from <= b.next
}

// stampAt returns the append timestamp of seq, or 0 when seq is not (or
// no longer) in the backlog.
func (b *backlog) stampAt(seq uint64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if seq == 0 || seq >= b.next {
		return 0
	}
	e := &b.buf[seq%uint64(len(b.buf))]
	if e.seq != seq {
		return 0
	}
	return e.at
}

// collect copies records [from, tail] matching slots into dst (up to
// maxBytes of body), returning the extended body, the next unconsumed
// seq, how many records matched, and whether from has already been
// overwritten (the peer fell off the backlog).
func (b *backlog) collect(from uint64, slots *protocol.SlotSet, dst []byte, maxBytes int) (out []byte, next uint64, matched int, overrun bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := uint64(len(b.buf))
	oldest := uint64(1)
	if b.next > n {
		oldest = b.next - n
	}
	if from < oldest {
		return dst, from, 0, true
	}
	next = from
	for next < b.next && len(dst) < maxBytes {
		rec := b.buf[next%n].rec
		key := binary.LittleEndian.Uint64(rec[1:9])
		if slots == nil || slots.Has(cluster.SlotOf(key)) {
			exp := int64(binary.LittleEndian.Uint64(rec[9:17]))
			ver := binary.LittleEndian.Uint64(rec[17:25])
			dst = appendRecord(dst, rec[0], key, exp, ver, rec[25:])
			matched++
		}
		next++
	}
	return dst, next, matched, false
}

// peer is one connected follower.
type peer struct {
	src    *Source
	conn   net.Conn
	bw     *bufio.Writer
	name   string
	slots  *protocol.SlotSet // nil = all
	cursor atomic.Uint64     // next backlog seq to consume

	// resume request from the hello (zero when the follower never synced).
	resumeSession uint64
	resumeSeq     uint64

	// frame assembly, reused per frame
	hdr     [frameHeaderLen]byte
	staging []byte
	comp    bytes.Buffer
	fw      *flate.Writer

	acked  atomic.Uint64
	synced atomic.Bool
	idle   atomic.Bool
	wake   chan struct{}
	dead   chan struct{} // closed by the ack reader on conn failure
	once   sync.Once
}

// sent returns the highest tail seq covered by sent frames. The peer is
// published to the peer set before its cursor is first stored, so a
// scrape in that window sees cursor 0 — clamp it to 0 rather than
// underflowing cursor-1 to 2^64-1.
func (p *peer) sent() uint64 {
	if c := p.cursor.Load(); c > 0 {
		return c - 1
	}
	return 0
}

// PeerStatus describes one connected follower for /replication.
type PeerStatus struct {
	Name   string `json:"name"`
	Remote string `json:"remote"`
	Slots  int    `json:"slots"` // subscribed slot count (256 = all)
	Synced bool   `json:"synced"`
	Sent   uint64 `json:"sent"`  // highest tail seq covered by sent frames
	Acked  uint64 `json:"acked"` // highest applied seq the follower confirmed
}

// PeerHealth describes one follower the source knows of — connected or
// not. Disconnected peers keep their last acked/sent watermarks until
// ForgetPeer, so a scrape (and the failure detector reading it) sees a
// dead follower as up=0 with a growing lag, not as a vanished series.
type PeerHealth struct {
	Name   string `json:"name"`
	Up     bool   `json:"up"`
	Synced bool   `json:"synced"`
	Slots  int    `json:"slots"`
	Sent   uint64 `json:"sent"`
	Acked  uint64 `json:"acked"`
}

// peerMemory is the retained watermark of a peer that has disconnected.
type peerMemory struct {
	slots  int
	sent   uint64
	acked  uint64
	synced bool // whether the peer had completed a sync when it dropped
}

// Source is the primary side: it fans the WAL tail into a backlog and
// serves follower connections on a dedicated listener.
type Source struct {
	cfg SourceConfig
	ln  net.Listener
	bl  backlog

	// session identifies this Source instance (nonzero); sequence numbers
	// are only meaningful within one session, so a follower may resume —
	// skip the initial sync — iff it presents this id and the backlog
	// still covers its applied watermark.
	session uint64

	mu       sync.Mutex
	peers    map[*peer]struct{}
	hist     map[string]peerMemory // retained watermarks of dropped peers
	forgot   map[string]struct{}   // names ForgetPeer hit while their teardown was still in flight
	peerList atomic.Pointer[[]*peer]

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	framesSent atomic.Int64
	syncsRun   atomic.Int64
	resumesRun atomic.Int64
}

// NewSource attaches the tail fanout to cfg.Pipe and starts the
// replication listener. Close detaches and stops everything.
func NewSource(cfg SourceConfig) (*Source, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	listen := cfg.Listen
	if listen == nil {
		listen = net.Listen
	}
	ln, err := listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	s := &Source{
		cfg:    cfg,
		ln:     ln,
		peers:  map[*peer]struct{}{},
		hist:   map[string]peerMemory{},
		forgot: map[string]struct{}{},
		stop:   make(chan struct{}),
	}
	for s.session == 0 {
		s.session = rand.Uint64()
	}
	s.bl.buf = make([]blEntry, cfg.BacklogRecords)
	s.bl.next = 1
	cfg.Pipe.SetTailSink(s)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound replication address.
func (s *Source) Addr() string { return s.ln.Addr().String() }

// Tail returns the last tail seq assigned (the replication high-water
// mark; 0 = no records since the source started).
func (s *Source) Tail() uint64 { return s.bl.tail() }

// TailRecord implements persist.TailSink: called on the persister
// goroutines for every record written to a segment. It copies the
// payload into the backlog and wakes idle peer senders — no blocking, no
// steady-state allocation, which is what keeps the request hot path at
// zero allocs with replication enabled.
func (s *Source) TailRecord(payload []byte) {
	s.bl.append(payload, s.cfg.Clock().UnixNano())
	if pl := s.peerList.Load(); pl != nil {
		for _, p := range *pl {
			if p.idle.Load() {
				select {
				case p.wake <- struct{}{}:
				default:
				}
			}
		}
	}
}

// Status snapshots every connected follower.
func (s *Source) Status() []PeerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PeerStatus, 0, len(s.peers))
	for p := range s.peers {
		nslots := protocol.SlotCount
		if p.slots != nil {
			nslots = p.slots.Len()
		}
		out = append(out, PeerStatus{
			Name:   p.name,
			Remote: p.conn.RemoteAddr().String(),
			Slots:  nslots,
			Synced: p.synced.Load(),
			Sent:   p.sent(),
			Acked:  p.acked.Load(),
		})
	}
	return out
}

// Peers snapshots every follower the source knows of — connected ones
// with live watermarks, dropped ones with the watermarks they held when
// they disconnected — sorted by name. This is the failure detector's
// view: a peer that stops appearing up here is a candidate for
// promotion, and its retained acked watermark says how far behind the
// takeover point is.
func (s *Source) Peers() []PeerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName := make(map[string]PeerHealth, len(s.peers)+len(s.hist))
	for name, m := range s.hist {
		byName[name] = PeerHealth{
			Name: name, Up: false, Synced: false,
			Slots: m.slots, Sent: m.sent, Acked: m.acked,
		}
	}
	for p := range s.peers {
		nslots := protocol.SlotCount
		if p.slots != nil {
			nslots = p.slots.Len()
		}
		byName[p.name] = PeerHealth{
			Name: p.name, Up: true, Synced: p.synced.Load(),
			Slots: nslots, Sent: p.sent(), Acked: p.acked.Load(),
		}
	}
	out := make([]PeerHealth, 0, len(byName))
	for _, h := range byName {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ForgetPeer drops the retained watermark of a disconnected peer. The
// mesh calls it when a member leaves the cluster for good (rewire no
// longer places it), so departures stop scraping as down followers.
// It is authoritative against an in-flight teardown: the caller closes
// the follower's connection before calling, but unregister runs on the
// serve goroutine only once the close is noticed — if that peer is
// still registered, its name is marked so the late unregister doesn't
// re-insert it into hist as a phantom permanently-down follower.
func (s *Source) ForgetPeer(name string) {
	s.mu.Lock()
	delete(s.hist, name)
	for p := range s.peers {
		if p.name == name {
			s.forgot[name] = struct{}{}
			break
		}
	}
	s.mu.Unlock()
}

// Collect emits the source's replication gauges: the tail watermark,
// frame/sync/resume counters, and a per-peer breakdown for every peer
// the source knows of. A disconnected follower does NOT vanish: it
// scrapes as cphash_replica_peer_up 0 with its last acked watermark
// retained, so its lag keeps growing against the advancing tail — the
// exact down-and-falling-behind signal the failure detector thresholds
// on (a vanished series is indistinguishable from "never existed").
func (s *Source) Collect(e *obs.Expo, labels string) {
	tail := s.Tail()
	e.Gauge("cphash_replica_tail_seq", "Replication tail high-water mark.", labels, float64(tail))
	e.Counter("cphash_replica_frames_sent_total", "Replication frames sent to followers.", labels, s.framesSent.Load())
	e.Counter("cphash_replica_resyncs_total", "Completed follower initial syncs.", labels, s.syncsRun.Load())
	e.Counter("cphash_replica_resumes_total", "Follower sessions resumed warm (zero sync entries streamed).", labels, s.resumesRun.Load())
	peers := s.Peers()
	live := 0
	now := s.cfg.Clock().UnixNano()
	for _, ps := range peers {
		if ps.Up {
			live++
		}
		pl := obs.WithLabel(labels, "peer", ps.Name)
		var up float64
		if ps.Up {
			up = 1
		}
		e.Gauge("cphash_replica_peer_up", "Whether the peer's replication link is connected (1 = yes).", pl, up)
		lag := int64(tail) - int64(ps.Acked)
		if lag < 0 {
			lag = 0
		}
		e.Gauge("cphash_replica_lag_records", "Records between the tail and the peer's acked watermark (retained across disconnects).", pl, float64(lag))
		var lagMs float64
		if lag > 0 {
			if at := s.bl.stampAt(ps.Acked + 1); at > 0 && now > at {
				lagMs = float64(now-at) / 1e6
			}
		}
		e.Gauge("cphash_replica_lag_ms", "Age of the oldest unacked record in milliseconds.", pl, lagMs)
		backlog := int64(tail) - int64(ps.Sent)
		if backlog < 0 {
			backlog = 0
		}
		e.Gauge("cphash_replica_backlog_records", "Records not yet shipped to the peer.", pl, float64(backlog))
		var synced float64
		if ps.Synced {
			synced = 1
		}
		e.Gauge("cphash_replica_peer_synced", "Whether the peer completed its initial sync (1 = yes; 0 while down).", pl, synced)
	}
	e.Gauge("cphash_replica_followers", "Currently connected followers.", labels, float64(live))
}

// Close detaches the tail fanout, waits (bounded) for every live
// follower — including one still mid-initial-sync — to finish syncing
// and acknowledge the final tail, then stops the listener and
// disconnects everyone. The drain is what makes a graceful shutdown
// lose nothing: records appended by a final persist.Barrier are shipped
// and applied before the connections come down, so a promotion that
// follows observes the full acked history on the standby. Mid-sync
// peers matter precisely in the failover edge: right after a promotion
// the new primary's standbys are resyncing, and a graceful close that
// cut them loose unsynced would strand acked writes on the closing
// node. Only a dead peer is skipped — it catches up by resyncing from
// whoever owns the slots next. Idempotent.
func (s *Source) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.cfg.Pipe.SetTailSink(nil)
	s.drain(5 * time.Second)
	close(s.stop)
	s.ln.Close()
	s.mu.Lock()
	for p := range s.peers {
		p.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// drain blocks until every synced, live peer has acknowledged the tail
// as of detach, or the timeout elapses. Slot-filtered peers whose last
// matching record is old still converge: followers ack heartbeat frames,
// which carry the cursor watermark, within one heartbeat interval.
func (s *Source) drain(timeout time.Duration) {
	tail := s.bl.tail()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.drainedTo(tail) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *Source) drainedTo(tail uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for p := range s.peers {
		select {
		case <-p.dead:
			continue
		default:
		}
		if !p.synced.Load() || p.acked.Load() < tail {
			return false
		}
	}
	return true
}

func (s *Source) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// register adds a peer to the set and the COW wake list; the tail seq it
// returns is read after registration, so every later record either wakes
// the peer or predates its initial-sync roll barrier.
func (s *Source) register(p *peer) (tail uint64, err error) {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return 0, fmt.Errorf("replica: source closed")
	}
	s.peers[p] = struct{}{}
	// A reconnect supersedes any pending forget of the same name: this
	// peer's eventual disconnect should retain its watermark normally.
	delete(s.forgot, p.name)
	s.storePeerListLocked()
	s.mu.Unlock()
	return s.bl.tail(), nil
}

func (s *Source) unregister(p *peer) {
	s.mu.Lock()
	delete(s.peers, p)
	if _, forgotten := s.forgot[p.name]; forgotten {
		// ForgetPeer ran after this peer's connection was closed but
		// before the close was noticed here: honor it, don't retain.
		delete(s.forgot, p.name)
	} else if p.name != "" {
		// Retain the dropped peer's watermark so scrapes (and the failure
		// detector) see it down-and-lagging rather than gone.
		nslots := protocol.SlotCount
		if p.slots != nil {
			nslots = p.slots.Len()
		}
		s.hist[p.name] = peerMemory{
			slots:  nslots,
			sent:   p.sent(),
			acked:  p.acked.Load(),
			synced: p.synced.Load(),
		}
	}
	s.storePeerListLocked()
	s.mu.Unlock()
	p.conn.Close()
}

func (s *Source) storePeerListLocked() {
	pl := make([]*peer, 0, len(s.peers))
	for p := range s.peers {
		pl = append(pl, p)
	}
	s.peerList.Store(&pl)
}

// serve runs one follower connection to completion.
func (s *Source) serve(conn net.Conn) {
	defer s.wg.Done()
	p := &peer{
		src:  s,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		wake: make(chan struct{}, 1),
		dead: make(chan struct{}),
	}
	p.fw, _ = flate.NewWriter(io.Discard, flate.BestSpeed)
	if err := p.readHello(); err != nil {
		conn.Close()
		return
	}
	tail, err := s.register(p)
	if err != nil {
		conn.Close()
		return
	}
	defer s.unregister(p)
	// Grant a warm resume iff the hello names this session — sequence
	// numbers are incomparable across Source instances — and the backlog
	// still covers everything past the follower's applied watermark. A
	// granted resume streams zero sync entries; the follower is already
	// synced at resumeSeq, which is what makes a mesh rewire (or a brief
	// link blip) free on a warm pair. If the backlog evicts the gap
	// between this check and live streaming, collect reports an overrun
	// and the peer falls back to a full resync on its next connection.
	resume := p.resumeSession == s.session && p.resumeSeq <= tail && s.bl.covers(p.resumeSeq+1)
	if resume {
		p.cursor.Store(p.resumeSeq + 1)
		p.acked.Store(p.resumeSeq)
		p.synced.Store(true)
	} else {
		p.cursor.Store(tail + 1)
	}
	if err := p.writeReply(resume); err != nil {
		return
	}

	// The ack reader starts before the sync so a follower death mid-sync
	// closes the connection promptly. The follower sends its first ack
	// only after APPLYING the sync-done frame, so readAcks — not sync
	// completion here — is what flips the peer to synced: a synced peer
	// provably holds the data. (A resumed peer proved it last session;
	// it is synced from the start.)
	s.wg.Add(1)
	go p.readAcks()

	if resume {
		s.resumesRun.Add(1)
		if p.sendFrame(frameResumeDone, p.resumeSeq, nil) != nil {
			return
		}
	} else if err := p.initialSync(); err != nil {
		return
	}
	p.live()
}

// readHello validates and stores the follower's hello.
func (p *peer) readHello() error {
	p.conn.SetReadDeadline(time.Now().Add(p.src.cfg.HandshakeTimeout))
	defer p.conn.SetReadDeadline(time.Time{})
	br := bufio.NewReaderSize(p.conn, 256)
	var magic [len(replMagic) + 1]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	if string(magic[:len(replMagic)]) != replMagic {
		return fmt.Errorf("replica: bad handshake magic")
	}
	name := make([]byte, magic[len(replMagic)])
	if _, err := io.ReadFull(br, name); err != nil {
		return err
	}
	p.name = string(name)
	var set protocol.SlotSet
	if _, err := io.ReadFull(br, set[:]); err != nil {
		return err
	}
	all := true
	for s := 0; s < protocol.SlotCount; s++ {
		if !set.Has(s) {
			all = false
			break
		}
	}
	if !all {
		p.slots = &set
	}
	var resume [helloResumeLen]byte
	if _, err := io.ReadFull(br, resume[:]); err != nil {
		return err
	}
	p.resumeSession = binary.LittleEndian.Uint64(resume[0:8])
	p.resumeSeq = binary.LittleEndian.Uint64(resume[8:16])
	return nil
}

// writeReply completes the handshake: magic, the resume verdict, and
// this source's session id (the follower presents it to resume next
// time).
func (p *peer) writeReply(resumed bool) error {
	reply := make([]byte, 0, replyLen)
	reply = append(reply, replMagic...)
	var flags byte
	if resumed {
		flags |= replyFlagResumed
	}
	reply = append(reply, flags)
	reply = binary.LittleEndian.AppendUint64(reply, p.src.session)
	p.conn.SetWriteDeadline(time.Now().Add(p.src.cfg.HandshakeTimeout))
	_, err := p.conn.Write(reply)
	return err
}

// sendFrame compresses (if body is non-empty) and writes one frame.
func (p *peer) sendFrame(typ byte, seq uint64, body []byte) error {
	clen := 0
	if len(body) > 0 {
		p.comp.Reset()
		p.fw.Reset(&p.comp)
		if _, err := p.fw.Write(body); err != nil {
			return err
		}
		if err := p.fw.Close(); err != nil {
			return err
		}
		clen = p.comp.Len()
	}
	putFrameHeader(p.hdr[:], typ, seq, p.src.cfg.Clock().UnixNano(), len(body), clen)
	p.conn.SetWriteDeadline(time.Now().Add(p.src.cfg.WriteTimeout))
	if _, err := p.bw.Write(p.hdr[:]); err != nil {
		return err
	}
	if clen > 0 {
		if _, err := p.bw.Write(p.comp.Bytes()); err != nil {
			return err
		}
	}
	if err := p.bw.Flush(); err != nil {
		return err
	}
	p.src.framesSent.Add(1)
	return nil
}

// initialSync streams the durable prefix: roll every stream (the
// barrier), then replay snapshot + sealed segments below it, batched
// into 'D' frames with seq 0 (pre-tail), then the sync-done marker at
// the tail position where live streaming begins. Records between peer
// registration and the roll barrier appear in both phases; replay
// idempotency makes that overlap correct.
func (p *peer) initialSync() error {
	bar, err := p.src.cfg.Pipe.RollAll()
	if err != nil {
		return err
	}
	p.staging = p.staging[:0]
	flushBatch := func() error {
		if len(p.staging) == 0 {
			return nil
		}
		err := p.sendFrame(frameData, 0, p.staging)
		p.staging = p.staging[:0]
		return err
	}
	_, err = p.src.cfg.Pipe.ReplayDurable(bar, func(op persist.Op, key uint64, exp int64, ver uint64, val []byte) error {
		if p.slots != nil && !p.slots.Has(cluster.SlotOf(key)) {
			return nil
		}
		p.staging = appendRecord(p.staging, byte(op), key, exp, ver, val)
		if len(p.staging) >= p.src.cfg.BatchBytes {
			return flushBatch()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flushBatch(); err != nil {
		return err
	}
	return p.sendFrame(frameSyncDone, p.cursor.Load()-1, nil)
}

// live streams the backlog from the peer's cursor, heartbeating when
// idle so the follower's staleness estimate keeps advancing.
func (p *peer) live() {
	ticker := time.NewTicker(p.src.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-p.src.stop:
			return
		case <-p.dead:
			return
		default:
		}
		p.staging = p.staging[:0]
		body, next, matched, overrun := p.src.bl.collect(p.cursor.Load(), p.slots, p.staging, p.src.cfg.BatchBytes)
		p.staging = body
		if overrun {
			return // fell off the backlog: disconnect, follower resyncs
		}
		if matched > 0 {
			if err := p.sendFrame(frameData, next-1, body); err != nil {
				return
			}
			p.cursor.Store(next)
			continue
		}
		p.cursor.Store(next)
		p.idle.Store(true)
		if p.src.bl.tail() >= p.cursor.Load() { // kick protocol: recheck after publishing idleness
			p.idle.Store(false)
			continue
		}
		select {
		case <-p.wake:
		case <-ticker.C:
			if err := p.sendFrame(frameHeartbeat, p.cursor.Load()-1, nil); err != nil {
				p.idle.Store(false)
				return
			}
		case <-p.src.stop:
			p.idle.Store(false)
			return
		case <-p.dead:
			p.idle.Store(false)
			return
		}
		p.idle.Store(false)
	}
}

// readAcks drains follower acknowledgements, advancing the watermark.
func (p *peer) readAcks() {
	defer p.src.wg.Done()
	defer p.once.Do(func() { close(p.dead) })
	defer p.conn.Close() // unblock the sender
	br := bufio.NewReaderSize(p.conn, 4<<10)
	var ack [ackLen]byte
	for {
		if _, err := io.ReadFull(br, ack[:]); err != nil {
			return
		}
		if ack[0] != ackByte {
			return
		}
		if !p.synced.Load() {
			// First ack = the follower applied the entire initial sync.
			p.synced.Store(true)
			p.src.syncsRun.Add(1)
		}
		seq := binary.LittleEndian.Uint64(ack[1:9])
		for {
			cur := p.acked.Load()
			if seq <= cur || p.acked.CompareAndSwap(cur, seq) {
				break
			}
		}
	}
}
