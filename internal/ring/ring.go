// Package ring implements the shared-memory message-passing buffers from
// Section 3.4 of the CPHash paper.
//
// The primary type is SPSC, the "array of buffers" design: a pre-allocated
// circular buffer with a read index, a write index, and a producer-private
// temporary write index. The producer writes messages and advances only its
// temporary index; when a whole cache line of messages has accumulated (or
// on an explicit Flush) it publishes by storing the temporary index into the
// shared write index. Symmetrically the consumer reads messages ahead of the
// shared read index and publishes the read index only after draining a full
// cache line. In the common case, per cache line of messages the producer
// and consumer exchange one buffer line plus occasional index lines — the
// paper measures ~1.5 cache misses to send and receive two messages.
//
// SingleSlot is the paper's original single-value design (one in-flight
// message per direction), kept for the ablation experiment: it is cheaper
// per message at low rate but forbids batching and pipelining.
//
// All indices are monotonically increasing uint64s; the buffer position is
// index & mask. Indices never wrap in practice (2^64 messages).
package ring

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// DefaultCapacity is the per-direction ring capacity, in messages, used by
// callers that do not specify one. It comfortably holds the paper's largest
// useful pipeline (8,192 outstanding requests spread over many servers).
const DefaultCapacity = 4096

// linePad separates hot fields onto distinct cache lines to prevent false
// sharing between the producer and consumer.
type linePad [64]byte

// SPSC is a single-producer single-consumer circular message buffer with
// cache-line-granularity index publication. The zero value is not usable;
// call NewSPSC.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	// flushMask = lineMsgs-1: publish indices whenever the private index
	// crosses a multiple of lineMsgs (a cache line of messages).
	flushMask uint64

	_ linePad
	// write is the producer's published index: messages [read, write) are
	// visible to the consumer.
	write atomic.Uint64
	_     linePad
	// read is the consumer's published index: slots [..., read) may be
	// overwritten by the producer.
	read atomic.Uint64
	_    linePad

	// Producer-private state (only the producer goroutine touches these).
	tmpWrite   uint64 // next slot the producer will fill
	cachedRead uint64 // producer's last observed value of read
	_          linePad

	// Consumer-private state.
	tmpRead     uint64 // next slot the consumer will read
	cachedWrite uint64 // consumer's last observed value of write
	_           linePad
}

// NewSPSC returns an SPSC ring holding capacity messages of type T.
// capacity must be a power of two. lineMsgs is the number of messages that
// fit a 64-byte cache line (the index-publication granularity); it must be a
// power of two ≥ 1. With 16-byte messages, lineMsgs is 4; with 8-byte packed
// words it is 8.
func NewSPSC[T any](capacity, lineMsgs int) (*SPSC[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("ring: capacity %d is not a positive power of two", capacity)
	}
	if lineMsgs <= 0 || lineMsgs&(lineMsgs-1) != 0 {
		return nil, fmt.Errorf("ring: lineMsgs %d is not a positive power of two", lineMsgs)
	}
	if lineMsgs > capacity {
		return nil, fmt.Errorf("ring: lineMsgs %d exceeds capacity %d", lineMsgs, capacity)
	}
	return &SPSC[T]{
		buf:       make([]T, capacity),
		mask:      uint64(capacity - 1),
		flushMask: uint64(lineMsgs - 1),
	}, nil
}

// MustSPSC is NewSPSC that panics on invalid arguments; for tests and
// constant-parameter call sites.
func MustSPSC[T any](capacity, lineMsgs int) *SPSC[T] {
	r, err := NewSPSC[T](capacity, lineMsgs)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring capacity in messages.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Produce appends one message without publishing it, reporting false when
// the ring has no free slot (the caller may Flush and retry, or back off).
// Only the single producer goroutine may call Produce/Flush/ProduceSpin.
func (r *SPSC[T]) Produce(v T) bool {
	if r.tmpWrite-r.cachedRead >= uint64(len(r.buf)) {
		// Looks full against our stale view; refresh the read index.
		r.cachedRead = r.read.Load()
		if r.tmpWrite-r.cachedRead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[r.tmpWrite&r.mask] = v
	r.tmpWrite++
	// Publish automatically when a whole cache line of messages is ready,
	// exactly as the paper's client threads do.
	if r.tmpWrite&r.flushMask == 0 {
		r.write.Store(r.tmpWrite)
	}
	return true
}

// ProduceSpin appends one message, spinning (with Gosched under prolonged
// fullness) until space is available. It flushes pending messages before
// spinning so the consumer can drain and make room.
func (r *SPSC[T]) ProduceSpin(v T) {
	if r.Produce(v) {
		return
	}
	r.Flush()
	spins := 0
	for !r.Produce(v) {
		spins++
		if spins > 128 {
			runtime.Gosched()
			spins = 0
		}
	}
}

// Flush publishes all privately-buffered messages to the consumer. Call it
// when a batch is complete or before waiting for replies.
func (r *SPSC[T]) Flush() {
	if r.tmpWrite != r.write.Load() {
		r.write.Store(r.tmpWrite)
	}
}

// Pending returns the number of produced-but-unpublished messages.
func (r *SPSC[T]) Pending() int {
	return int(r.tmpWrite - r.write.Load())
}

// Consume removes and returns the next message. ok is false when no
// published message is available. Only the single consumer goroutine may
// call Consume/ConsumeBatch/Drained.
func (r *SPSC[T]) Consume() (v T, ok bool) {
	if r.tmpRead == r.cachedWrite {
		r.cachedWrite = r.write.Load()
		if r.tmpRead == r.cachedWrite {
			return v, false
		}
	}
	v = r.buf[r.tmpRead&r.mask]
	r.tmpRead++
	// Publish the read index once a whole cache line has been drained, as
	// the paper's server threads do, or when the ring is (as far as we can
	// see) empty — otherwise a producer blocked on a full ring would wait
	// for up to a line of messages that will never arrive.
	if r.tmpRead&r.flushMask == 0 || r.tmpRead == r.cachedWrite {
		r.read.Store(r.tmpRead)
	}
	return v, true
}

// ConsumeBatch fills dst with up to len(dst) messages and returns the count.
// The read index is published once at the end of the batch, so a large batch
// costs the consumer a single index store.
func (r *SPSC[T]) ConsumeBatch(dst []T) int {
	n := 0
	for n < len(dst) {
		if r.tmpRead == r.cachedWrite {
			r.cachedWrite = r.write.Load()
			if r.tmpRead == r.cachedWrite {
				break
			}
		}
		dst[n] = r.buf[r.tmpRead&r.mask]
		r.tmpRead++
		n++
	}
	if n > 0 {
		r.read.Store(r.tmpRead)
	}
	return n
}

// ConsumeBatchAdaptive fills dst like ConsumeBatch but, when messages are
// only trickling in, briefly waits for a fuller batch: if at least one
// message is available but fewer than lowWater, it re-polls the producer
// index up to spinBudget times before draining whatever has arrived.
// Amortizing the index publication and the consumer's downstream
// per-batch costs over more messages is the paper's batching argument
// (Figure 7's batch-size sensitivity); the low-watermark and the spin
// budget bound how long a near-idle consumer waits for stragglers. An
// empty ring returns 0 immediately — adaptive batching must never slow
// the no-work sweep of a consumer polling many rings.
func (r *SPSC[T]) ConsumeBatchAdaptive(dst []T, lowWater, spinBudget int) int {
	if lowWater > len(dst) {
		lowWater = len(dst)
	}
	avail := int(r.cachedWrite - r.tmpRead)
	if avail < lowWater {
		r.cachedWrite = r.write.Load()
		avail = int(r.cachedWrite - r.tmpRead)
		if avail == 0 {
			return 0
		}
		for spin := 0; avail < lowWater && spin < spinBudget; spin++ {
			r.cachedWrite = r.write.Load()
			avail = int(r.cachedWrite - r.tmpRead)
		}
	}
	return r.ConsumeBatch(dst)
}

// Len returns the number of published, unconsumed messages. It is exact
// when called from either endpoint goroutine and a lower bound otherwise.
func (r *SPSC[T]) Len() int {
	return int(r.write.Load() - r.read.Load())
}

// Empty reports whether the ring has no published messages. Like Len it is
// advisory unless called from an endpoint.
func (r *SPSC[T]) Empty() bool { return r.Len() == 0 }

// Drained reports whether the consumer has caught up with everything this
// producer ever wrote, including unflushed messages. It must be called from
// the producer goroutine; producers use it to hand the ring off cleanly.
func (r *SPSC[T]) Drained() bool { return r.read.Load() == r.tmpWrite }

// SingleSlot is the paper's original message-passing design: a single
// in-flight value per direction. The producer stores a value and waits for
// the consumer to take it. It is kept for the §3.4 ablation — cheaper per
// message when requests arrive slowly, but it forbids batching, so under
// load the array-of-buffers design (SPSC) wins.
type SingleSlot[T any] struct {
	_    linePad
	full atomic.Uint32
	_    linePad
	val  T
	_    linePad
}

// Send publishes v, spinning until the slot is free.
func (s *SingleSlot[T]) Send(v T) {
	spins := 0
	for s.full.Load() != 0 {
		spins++
		if spins > 128 {
			runtime.Gosched()
			spins = 0
		}
	}
	s.val = v
	s.full.Store(1)
}

// TrySend publishes v if the slot is free, reporting success.
func (s *SingleSlot[T]) TrySend(v T) bool {
	if s.full.Load() != 0 {
		return false
	}
	s.val = v
	s.full.Store(1)
	return true
}

// Recv removes and returns the value, spinning until one is present.
func (s *SingleSlot[T]) Recv() T {
	spins := 0
	for s.full.Load() == 0 {
		spins++
		if spins > 128 {
			runtime.Gosched()
			spins = 0
		}
	}
	v := s.val
	s.full.Store(0)
	return v
}

// TryRecv removes and returns the value if one is present.
func (s *SingleSlot[T]) TryRecv() (v T, ok bool) {
	if s.full.Load() == 0 {
		return v, false
	}
	v = s.val
	s.full.Store(0)
	return v, true
}
