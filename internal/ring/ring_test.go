package ring

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSPSCValidation(t *testing.T) {
	cases := []struct {
		capacity, lineMsgs int
		ok                 bool
	}{
		{16, 4, true},
		{1, 1, true},
		{4096, 8, true},
		{0, 4, false},
		{-8, 4, false},
		{10, 4, false}, // capacity not a power of two
		{16, 3, false}, // lineMsgs not a power of two
		{16, 0, false},
		{4, 8, false}, // lineMsgs > capacity
	}
	for _, c := range cases {
		_, err := NewSPSC[uint64](c.capacity, c.lineMsgs)
		if (err == nil) != c.ok {
			t.Errorf("NewSPSC(%d, %d): err = %v, want ok=%v", c.capacity, c.lineMsgs, err, c.ok)
		}
	}
}

func TestMustSPSCPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSPSC(3, 1) did not panic")
		}
	}()
	MustSPSC[int](3, 1)
}

// TestProduceConsumeFIFO checks single-goroutine FIFO semantics including
// wraparound several times past the capacity.
func TestProduceConsumeFIFO(t *testing.T) {
	r := MustSPSC[int](8, 4)
	next := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			if !r.Produce(next + i) {
				t.Fatalf("round %d: ring full after %d messages", round, i)
			}
		}
		r.Flush()
		for i := 0; i < 5; i++ {
			v, ok := r.Consume()
			if !ok {
				t.Fatalf("round %d: consume %d: empty", round, i)
			}
			if v != next+i {
				t.Fatalf("round %d: got %d, want %d", round, v, next+i)
			}
		}
		next += 5
	}
	if _, ok := r.Consume(); ok {
		t.Fatal("consume on empty ring succeeded")
	}
}

// TestVisibilityRequiresFlush verifies messages below a cache-line boundary
// are invisible until Flush — the batching contract from §3.4.
func TestVisibilityRequiresFlush(t *testing.T) {
	r := MustSPSC[int](16, 4)
	for i := 0; i < 3; i++ { // 3 < lineMsgs: no auto-publish
		if !r.Produce(i) {
			t.Fatal("produce failed")
		}
	}
	if _, ok := r.Consume(); ok {
		t.Fatal("consumer saw unflushed messages")
	}
	if got := r.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	r.Flush()
	if got := r.Pending(); got != 0 {
		t.Fatalf("Pending after flush = %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		v, ok := r.Consume()
		if !ok || v != i {
			t.Fatalf("got (%d, %v), want (%d, true)", v, ok, i)
		}
	}
}

// TestAutoFlushOnLineBoundary verifies the producer publishes automatically
// once a full cache line of messages has accumulated.
func TestAutoFlushOnLineBoundary(t *testing.T) {
	r := MustSPSC[int](16, 4)
	for i := 0; i < 4; i++ {
		r.Produce(i)
	}
	// No explicit Flush: the 4th message crossed the line boundary.
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (auto-flush missing)", got)
	}
}

// TestFullRing verifies Produce fails (rather than overwriting) at capacity
// and succeeds again after the consumer frees a line.
func TestFullRing(t *testing.T) {
	r := MustSPSC[int](8, 4)
	for i := 0; i < 8; i++ {
		if !r.Produce(i) {
			t.Fatalf("produce %d failed below capacity", i)
		}
	}
	if r.Produce(99) {
		t.Fatal("produce succeeded on a full ring")
	}
	// Drain one full line so the read index gets published.
	for i := 0; i < 4; i++ {
		if v, ok := r.Consume(); !ok || v != i {
			t.Fatalf("consume got (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if !r.Produce(99) {
		t.Fatal("produce failed after consumer drained a line")
	}
}

// TestLazyReadPublication: consuming less than a cache line on a non-empty
// ring must not publish the read index (that is the §3.4 server behaviour),
// but draining to empty must.
func TestLazyReadPublication(t *testing.T) {
	r := MustSPSC[int](16, 4)
	for i := 0; i < 8; i++ {
		r.Produce(i)
	}
	r.Flush()
	r.Consume() // 1 of 8: below line boundary, ring non-empty
	if got := r.read.Load(); got != 0 {
		t.Fatalf("read index published early: %d", got)
	}
	for i := 0; i < 3; i++ {
		r.Consume()
	}
	if got := r.read.Load(); got != 4 {
		t.Fatalf("read index after a full line = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		r.Consume()
	}
	if got := r.read.Load(); got != 8 {
		t.Fatalf("read index after drain = %d, want 8", got)
	}
}

func TestConsumeBatch(t *testing.T) {
	r := MustSPSC[int](32, 4)
	for i := 0; i < 10; i++ {
		r.Produce(i)
	}
	r.Flush()
	dst := make([]int, 6)
	if n := r.ConsumeBatch(dst); n != 6 {
		t.Fatalf("first batch n = %d, want 6", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	if n := r.ConsumeBatch(dst); n != 4 {
		t.Fatalf("second batch n = %d, want 4", n)
	}
	if n := r.ConsumeBatch(dst); n != 0 {
		t.Fatalf("empty batch n = %d, want 0", n)
	}
	if got := r.read.Load(); got != 10 {
		t.Fatalf("read index = %d, want 10", got)
	}
}

// TestConcurrentStress pushes a long integer sequence through the ring from
// a producer goroutine to a consumer goroutine and verifies order and
// completeness. Run with -race to validate the happens-before edges.
func TestConcurrentStress(t *testing.T) {
	const total = 100000
	r := MustSPSC[uint64](256, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; i++ {
			r.ProduceSpin(i)
		}
		r.Flush()
	}()
	for want := uint64(0); want < total; {
		v, ok := r.Consume()
		if !ok {
			runtime.Gosched() // single-CPU boxes need the producer scheduled
			continue
		}
		if v != want {
			t.Errorf("out of order: got %d, want %d", v, want)
			break
		}
		want++
	}
	wg.Wait()
}

// TestConcurrentBatchStress is the same but drains with ConsumeBatch.
func TestConcurrentBatchStress(t *testing.T) {
	const total = 100000
	r := MustSPSC[uint64](128, 8)
	go func() {
		for i := uint64(0); i < total; i++ {
			r.ProduceSpin(i)
		}
		r.Flush()
	}()
	var got uint64
	buf := make([]uint64, 32)
	for got < total {
		n := r.ConsumeBatch(buf)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			if buf[i] != got {
				t.Fatalf("out of order: got %d, want %d", buf[i], got)
			}
			got++
		}
	}
}

// TestQuickFIFO is a property test: any interleaving of produce/flush/
// consume operations driven by a random script behaves exactly like a
// FIFO queue model.
func TestQuickFIFO(t *testing.T) {
	f := func(script []byte) bool {
		r := MustSPSC[int](16, 4)
		var model []int // reference queue of published messages
		var unpublished []int
		next := 0
		for _, op := range script {
			switch op % 3 {
			case 0: // produce
				if r.Produce(next) {
					if r.Pending() == 0 {
						// auto-flush happened: everything published
						model = append(model, unpublished...)
						model = append(model, next)
						unpublished = nil
					} else {
						unpublished = append(unpublished, next)
					}
					next++
				}
			case 1: // flush
				r.Flush()
				model = append(model, unpublished...)
				unpublished = nil
			case 2: // consume
				v, ok := r.Consume()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSlot(t *testing.T) {
	var s SingleSlot[int]
	if _, ok := s.TryRecv(); ok {
		t.Fatal("TryRecv on empty slot succeeded")
	}
	if !s.TrySend(7) {
		t.Fatal("TrySend on empty slot failed")
	}
	if s.TrySend(8) {
		t.Fatal("TrySend on full slot succeeded")
	}
	v, ok := s.TryRecv()
	if !ok || v != 7 {
		t.Fatalf("TryRecv = (%d, %v), want (7, true)", v, ok)
	}
}

func TestSingleSlotConcurrent(t *testing.T) {
	const total = 50000
	var s SingleSlot[uint64]
	go func() {
		for i := uint64(0); i < total; i++ {
			s.Send(i)
		}
	}()
	for want := uint64(0); want < total; want++ {
		if v := s.Recv(); v != want {
			t.Fatalf("got %d, want %d", v, want)
		}
	}
}

func BenchmarkSPSCRoundTrip(b *testing.B) {
	r := MustSPSC[uint64](4096, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var n int
		for n < b.N {
			if _, ok := r.Consume(); ok {
				n++
			} else {
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ProduceSpin(uint64(i))
	}
	r.Flush()
	<-done
}

func BenchmarkSingleSlotRoundTrip(b *testing.B) {
	var s SingleSlot[uint64]
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < b.N; n++ {
			s.Recv()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Send(uint64(i))
	}
	<-done
}

// TestDrained tracks the producer-side handoff predicate through produce,
// flush and consume.
func TestDrained(t *testing.T) {
	r := MustSPSC[int](8, 4)
	if !r.Drained() {
		t.Fatal("fresh ring not drained")
	}
	r.Produce(1) // unpublished message still counts as undrained
	if r.Drained() {
		t.Fatal("ring with unflushed message reported drained")
	}
	r.Flush()
	if r.Drained() {
		t.Fatal("ring with unconsumed message reported drained")
	}
	if _, ok := r.Consume(); !ok {
		t.Fatal("consume failed")
	}
	if !r.Drained() {
		t.Fatal("empty ring not drained after consume")
	}
}

// TestLenAndEmpty: advisory occupancy reporting.
func TestLenAndEmpty(t *testing.T) {
	r := MustSPSC[int](16, 4)
	if !r.Empty() || r.Len() != 0 || r.Cap() != 16 {
		t.Fatal("fresh ring wrong shape")
	}
	for i := 0; i < 5; i++ {
		r.Produce(i)
	}
	r.Flush()
	if r.Len() != 5 || r.Empty() {
		t.Fatalf("Len = %d, Empty = %v", r.Len(), r.Empty())
	}
	r.Consume()
	if r.Len() != 5 {
		// The read index publishes lazily (below a line, non-empty ring),
		// so Len still reports 5 — document the advisory semantics.
		t.Fatalf("Len = %d; advisory Len should still be 5 before index publication", r.Len())
	}
}

func TestConsumeBatchAdaptiveEmptyReturnsImmediately(t *testing.T) {
	r := MustSPSC[int](64, 4)
	dst := make([]int, 16)
	if n := r.ConsumeBatchAdaptive(dst, 4, 1<<20); n != 0 {
		t.Fatalf("empty ring: got %d messages, want 0", n)
	}
}

func TestConsumeBatchAdaptiveDrainsBelowWatermarkAfterBudget(t *testing.T) {
	r := MustSPSC[int](64, 4)
	r.Produce(1)
	r.Flush()
	dst := make([]int, 16)
	// One message, watermark 8: the spin budget expires with no producer
	// activity and the single message must still come out.
	if n := r.ConsumeBatchAdaptive(dst, 8, 64); n != 1 || dst[0] != 1 {
		t.Fatalf("got %d messages (dst[0]=%d), want the 1 pending message", n, dst[0])
	}
}

func TestConsumeBatchAdaptiveWaitsForWatermark(t *testing.T) {
	r := MustSPSC[int](1024, 4)
	for i := 0; i < 2; i++ {
		r.Produce(i)
	}
	r.Flush()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 2; i < 8; i++ {
			r.Produce(i)
		}
		r.Flush()
	}()
	<-done // producer finished: the adaptive consumer must see ≥ lowWater
	dst := make([]int, 16)
	if n := r.ConsumeBatchAdaptive(dst, 8, 1<<20); n != 8 {
		t.Fatalf("got %d messages, want all 8 once the watermark was met", n)
	}
	for i := 0; i < 8; i++ {
		if dst[i] != i {
			t.Fatalf("dst[%d] = %d, want %d (FIFO violated)", i, dst[i], i)
		}
	}
}

func TestConsumeBatchAdaptiveWatermarkClippedToDst(t *testing.T) {
	r := MustSPSC[int](64, 4)
	for i := 0; i < 3; i++ {
		r.Produce(i)
	}
	r.Flush()
	// lowWater 16 > len(dst) 3 must clip, not spin the full budget waiting
	// for messages dst could never hold.
	dst := make([]int, 3)
	if n := r.ConsumeBatchAdaptive(dst, 16, 1<<30); n != 3 {
		t.Fatalf("got %d messages, want 3", n)
	}
}

func TestConcurrentAdaptiveBatchStress(t *testing.T) {
	const total = 200000
	r := MustSPSC[uint64](256, 8)
	var sum uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]uint64, 64)
		got := 0
		for got < total {
			n := r.ConsumeBatchAdaptive(buf, 8, 32)
			for i := 0; i < n; i++ {
				sum += buf[i]
			}
			got += n
		}
	}()
	var want uint64
	for i := 0; i < total; i++ {
		r.ProduceSpin(uint64(i))
		want += uint64(i)
	}
	r.Flush()
	<-done
	if sum != want {
		t.Fatalf("adaptive consumer summed %d, want %d (lost or duplicated messages)", sum, want)
	}
}
