package simhash

import (
	"testing"

	"cphash/internal/topology"
	"cphash/internal/workload"
)

// TestAMDMachineSimilarResults: the paper ran CPHASH on a 48-core AMD
// machine too and reports "performance results … are similar"; the model
// must show a comparable win there.
func TestAMDMachineSimilarResults(t *testing.T) {
	if testing.Short() {
		t.Skip("AMD comparison takes a few seconds")
	}
	m := topology.AMDMachine()
	spec := workload.Default(1 << 20)
	cp := MustCPHash(CPConfig{Machine: m, Spec: spec, LRU: true})
	cp.Preload()
	rcp := cp.Run(3, 6)
	lh := MustLockHash(LockConfig{Machine: m, Spec: spec, LRU: true})
	lh.Preload()
	rlh := lh.Run(12, 24)
	ratio := rcp.ThroughputQPS() / rlh.ThroughputQPS()
	t.Logf("AMD ratio = %.2f", ratio)
	if ratio < 1.2 || ratio > 2.8 {
		t.Errorf("AMD ratio %.2f outside the 'similar to Intel' band", ratio)
	}
}

// TestBatchSizePackingTrend: larger client batches pack more messages per
// cache line, so per-op send misses fall monotonically-ish and throughput
// rises — §3.4's second benefit, measured.
func TestBatchSizePackingTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("batch sweep takes a few seconds")
	}
	var prevQPS, prevSend float64
	first := true
	for _, batch := range []int{16, 128, 1024} {
		cp := MustCPHash(CPConfig{
			Spec: workload.Default(1 << 20), LRU: true, OpsPerClientPerRound: batch,
		})
		cp.Preload()
		r := cp.Run(2, 4)
		send := r.TagPerOp(r.ClientThreads, TagSend).L3Miss
		qps := r.ThroughputQPS()
		t.Logf("batch %4d: %.3g q/s, send L3/op %.2f", batch, qps, send)
		if !first {
			if qps <= prevQPS {
				t.Errorf("throughput did not rise with batch (%.3g → %.3g)", prevQPS, qps)
			}
			if send >= prevSend {
				t.Errorf("send misses did not fall with batch (%.2f → %.2f)", prevSend, send)
			}
		}
		prevQPS, prevSend = qps, send
		first = false
	}
}

// TestHostMachineRuns: the model also accepts arbitrary host-like
// topologies (used by examples/analysis flags).
func TestHostMachineRuns(t *testing.T) {
	m := topology.Machine{
		Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 2,
		L2Size: 256 << 10, L3Size: 8 << 20, ClockHz: 3e9,
	}
	cp := MustCPHash(CPConfig{Machine: m, Spec: workload.Default(64 << 10), LRU: true, OpsPerClientPerRound: 64})
	cp.Preload()
	r := cp.Run(1, 2)
	if r.Ops == 0 || r.ThroughputQPS() <= 0 {
		t.Fatalf("host-machine run degenerate: %+v", r)
	}
}
