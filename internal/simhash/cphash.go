package simhash

import (
	"fmt"

	"cphash/internal/cachesim"
	"cphash/internal/partition"
	"cphash/internal/topology"
	"cphash/internal/workload"
)

// CPConfig configures a simulated CPHASH run.
type CPConfig struct {
	// Machine is the simulated topology (default: the paper's machine).
	Machine topology.Machine
	// Latency overrides the latency model (zero value: DefaultLatency).
	Latency *cachesim.LatencyModel
	// ClientThreads and ServerThreads list the hardware threads running
	// client and server loops. The paper's main configuration puts the
	// client on hardware thread 0 and the server on hardware thread 1 of
	// each of the 80 cores; PaperThreads builds exactly that split.
	ClientThreads []int
	ServerThreads []int
	// Workload parameters (paper §6 defaults via workload.Default).
	Spec workload.Spec
	// CapacityBytes is the table capacity (≤ working set; 0 = working set).
	CapacityBytes int
	// LRU selects the eviction policy.
	LRU bool
	// RingCap is the per-pair ring capacity in messages (default 1024).
	RingCap int
	// OpsPerClientPerRound is the client batch size per simulation round
	// (default 8; the batch-size ablation varies it).
	OpsPerClientPerRound int
}

// PaperThreads returns the paper's thread placement on machine m for the
// CPHASH microbenchmark: for every core, hardware thread 0 is a client and
// hardware thread 1 is a server (§6.1). On machines without SMT it splits
// cores in half: even cores clients, odd cores servers.
func PaperThreads(m topology.Machine) (clients, servers []int) {
	if m.ThreadsPerCore >= 2 {
		for c := 0; c < m.Cores(); c++ {
			clients = append(clients, c*m.ThreadsPerCore)
			servers = append(servers, c*m.ThreadsPerCore+1)
		}
		return clients, servers
	}
	for c := 0; c < m.Cores(); c++ {
		if c%2 == 0 {
			clients = append(clients, c)
		} else {
			servers = append(servers, c)
		}
	}
	return clients, servers
}

// cpPendingOp is a request awaiting its reply in FIFO order.
type cpPendingOp struct {
	kind workload.OpKind
	key  uint64
	elem *simElement // filled in when the server executes it
	hit  bool
}

// CPHashSim drives the CPHASH model over the cache simulator.
type CPHashSim struct {
	cfg  CPConfig
	sim  *cachesim.Sim
	gens []*workload.Generator

	parts []*simPartition
	// rings[c][s]
	req  [][]*simRing
	resp [][]*simRing
	// pending[c][s] FIFO
	pending [][][]cpPendingOp
	// followups[c][s]: header addresses of Ready/Decref messages in flight.
	followups [][][]uint64

	ops    int64
	hits   int64
	misses int64
}

// NewCPHash builds the simulated table and fabric.
func NewCPHash(cfg CPConfig) (*CPHashSim, error) {
	if cfg.Machine.Sockets == 0 {
		cfg.Machine = topology.PaperMachine()
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.ClientThreads) == 0 || len(cfg.ServerThreads) == 0 {
		cfg.ClientThreads, cfg.ServerThreads = PaperThreads(cfg.Machine)
	}
	if cfg.RingCap == 0 {
		// 128 messages per pair keeps the full fabric's footprint
		// (80×80 pairs × ~52 lines ≈ 20 MB) well inside the paper
		// machine's 240 MB of L3 while still holding several cache lines
		// of batched messages per pair.
		cfg.RingCap = 128
	}
	if cfg.OpsPerClientPerRound == 0 {
		// The paper's clients keep ~1,000 requests in flight (§6.1); one
		// simulation round is one such pipeline batch.
		cfg.OpsPerClientPerRound = 512
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = cfg.Spec.WorkingSetBytes
	}
	lat := cachesim.DefaultLatency()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	s := &CPHashSim{cfg: cfg, sim: cachesim.New(cfg.Machine, lat)}
	nServers := len(cfg.ServerThreads)
	nClients := len(cfg.ClientThreads)
	// The paper counts capacity in value bytes ("amount of memory required
	// to store all values", §6); headers live outside that budget.
	capElems := cfg.CapacityBytes / cfg.Spec.ValueSize / nServers
	if capElems < 1 {
		capElems = 1
	}
	for i := 0; i < nServers; i++ {
		s.parts = append(s.parts, newSimPartition(s.sim, capElems, cfg.LRU, uint64(i)*2654435761+7))
	}
	s.req = make([][]*simRing, nClients)
	s.resp = make([][]*simRing, nClients)
	s.pending = make([][][]cpPendingOp, nClients)
	s.followups = make([][][]uint64, nClients)
	for c := 0; c < nClients; c++ {
		s.req[c] = make([]*simRing, nServers)
		s.resp[c] = make([]*simRing, nServers)
		s.pending[c] = make([][]cpPendingOp, nServers)
		s.followups[c] = make([][]uint64, nServers)
		for p := 0; p < nServers; p++ {
			s.req[c][p] = newSimRing(s.sim, cfg.RingCap, 4)  // 16-byte requests
			s.resp[c][p] = newSimRing(s.sim, cfg.RingCap, 8) // 8-byte replies
		}
		spec := cfg.Spec
		spec.Seed = cfg.Spec.Seed + uint64(c)*0x9e3779b9 + 1
		g, err := workload.NewGenerator(spec)
		if err != nil {
			return nil, err
		}
		s.gens = append(s.gens, g)
	}
	return s, nil
}

// MustCPHash is NewCPHash that panics on error.
func MustCPHash(cfg CPConfig) *CPHashSim {
	s, err := NewCPHash(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *CPHashSim) serverOf(key uint64) int {
	return int(partition.Mix64(key) >> 32 % uint64(len(s.parts)))
}

// Preload fills the table to its steady-state occupancy: every working-set
// key (up to capacity) is inserted without message traffic, with the
// partition lines touched by the owning server thread so its cache reaches
// the steady state the paper measures in. Callers still run a few warm
// rounds before measuring so ring lines and value lines settle.
func (s *CPHashSim) Preload() {
	n := s.cfg.Spec.NumKeys()
	for i := 0; i < n; i++ {
		key := workload.KeyOfIndex(uint64(i))
		p := s.serverOf(key)
		tp := s.cfg.ServerThreads[p]
		e := s.parts[p].preloadInsert(key)
		s.sim.Access(tp, s.parts[p].bucketLine(key), true, TagExec)
		s.sim.Access(tp, e.headerAdr, true, TagExec)
		s.sim.Access(tp, s.parts[p].meta, true, TagExec)
	}
	s.sim.EndRound(int64(n))
	s.sim.ResetStats()
}

// Round simulates one batch round: clients issue OpsPerClientPerRound
// operations each, servers execute them, clients consume replies and send
// the follow-up Ready/Decref messages, servers drain those.
func (s *CPHashSim) Round() {
	batch := s.cfg.OpsPerClientPerRound
	// Phase A: clients issue requests.
	for c, tc := range s.cfg.ClientThreads {
		touched := map[int]bool{}
		for i := 0; i < batch; i++ {
			kind, key := s.gens[c].Next()
			p := s.serverOf(key)
			s.req[c][p].produce(tc, TagSend)
			s.sim.Idle(tc, clientOpCompute, TagSend)
			s.pending[c][p] = append(s.pending[c][p], cpPendingOp{kind: kind, key: key})
			touched[p] = true
		}
		for p := range touched {
			s.req[c][p].flush(tc, TagSend)
		}
	}
	// Phase B: servers drain request rings and execute.
	for p, tp := range s.cfg.ServerThreads {
		part := s.parts[p]
		for c := range s.cfg.ClientThreads {
			r := s.req[c][p]
			if r.pending() == 0 {
				continue
			}
			r.consumeBatchStart(tp, TagRecv)
			n := r.pending()
			for i := 0; i < n; i++ {
				r.consume(tp, TagRecv)
				s.sim.Idle(tp, serverMsgCompute, TagExec)
				q := &s.pending[c][p][i]
				switch q.kind {
				case workload.Lookup:
					q.elem = part.lookup(tp, q.key, TagExec, TagExec)
					q.hit = q.elem != nil
				case workload.Insert:
					q.elem = part.insert(tp, q.key, TagExec, TagExec)
					q.hit = q.elem != nil
				}
				s.resp[c][p].produce(tp, TagSendResp)
			}
			s.resp[c][p].flush(tp, TagSendResp)
		}
	}
	// Phase C: clients consume replies, touch data, send Ready/Decref.
	for c, tc := range s.cfg.ClientThreads {
		for p := range s.parts {
			q := s.pending[c][p]
			if len(q) == 0 {
				continue
			}
			r := s.resp[c][p]
			r.consumeBatchStart(tc, TagRecvResp)
			followups := 0
			for i := range q {
				r.consume(tc, TagRecvResp)
				op := &q[i]
				s.ops++
				switch {
				case op.kind == workload.Lookup && op.hit:
					s.hits++
					// Read the value, then release the reference.
					s.sim.Access(tc, op.elem.valueAdr, false, TagData)
					s.req[c][p].produce(tc, TagSend) // Decref
					s.followups[c][p] = append(s.followups[c][p], op.elem.headerAdr)
					followups++
				case op.kind == workload.Lookup:
					s.misses++
				case op.kind == workload.Insert && op.hit:
					// Copy the value in the client, publish with Ready.
					s.sim.Access(tc, op.elem.valueAdr, true, TagData)
					s.req[c][p].produce(tc, TagSend) // Ready
					s.followups[c][p] = append(s.followups[c][p], op.elem.headerAdr)
					followups++
				}
			}
			if followups > 0 {
				s.req[c][p].flush(tc, TagSend)
			}
			s.pending[c][p] = q[:0]
		}
	}
	// Phase D: servers drain Ready/Decref messages (header touch, local).
	for p, tp := range s.cfg.ServerThreads {
		for c := range s.cfg.ClientThreads {
			r := s.req[c][p]
			n := r.pending()
			if n == 0 {
				continue
			}
			r.consumeBatchStart(tp, TagRecv)
			for i := 0; i < n; i++ {
				r.consume(tp, TagRecv)
				s.sim.Idle(tp, serverMsgCompute/2, TagExec)
				s.sim.Access(tp, s.followups[c][p][i], true, TagExec)
			}
			s.followups[c][p] = s.followups[c][p][:0]
		}
	}
	s.sim.EndRound(int64(len(s.cfg.ClientThreads)) * int64(batch))
}

// Run executes warm-up rounds (discarded) then measured rounds, returning
// the result.
func (s *CPHashSim) Run(warmRounds, rounds int) Result {
	for i := 0; i < warmRounds; i++ {
		s.Round()
	}
	s.sim.ResetStats()
	s.ops, s.hits, s.misses = 0, 0, 0
	for i := 0; i < rounds; i++ {
		s.Round()
	}
	return Result{
		Name:          "cphash",
		Sim:           s.sim,
		Machine:       s.cfg.Machine,
		Ops:           s.ops,
		Hits:          s.hits,
		ClientThreads: append([]int(nil), s.cfg.ClientThreads...),
		ServerThreads: append([]int(nil), s.cfg.ServerThreads...),
	}
}

// Elements returns the total resident element count (for tests).
func (s *CPHashSim) Elements() int {
	n := 0
	for _, p := range s.parts {
		n += p.Len()
	}
	return n
}

// String describes the configuration.
func (s *CPHashSim) String() string {
	return fmt.Sprintf("cphash-sim: %d clients, %d servers, ws=%d, cap=%d",
		len(s.cfg.ClientThreads), len(s.cfg.ServerThreads),
		s.cfg.Spec.WorkingSetBytes, s.cfg.CapacityBytes)
}
