package simhash

import (
	"testing"

	"cphash/internal/topology"
	"cphash/internal/workload"
)

func TestDbgScaledWS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated working-set scaling takes ~10s; skipping in -short")
	}
	m := topology.PaperMachine().ScaleCaches(16)
	for _, ws := range []int{256 << 10, 1 << 20, 4 << 20} {
		spec := workload.Default(ws)
		c := MustCPHash(CPConfig{Machine: m, Spec: spec, LRU: true, RingCap: 64})
		c.Preload()
		r := c.Run(3, 6)
		l := MustLockHash(LockConfig{Machine: m, Spec: spec, LRU: true})
		l.Preload()
		rl := l.Run(12, 24)
		t.Logf("ws=%d client %+v", ws, r.ClientPerOp())
		t.Logf("ws=%d server %+v", ws, r.ServerPerOp())
		t.Logf("ws=%d lockhash %+v", ws, rl.ClientPerOp())
		t.Logf("ws=%d cp wall=%d dramBound=%d dram=%d | lh wall=%d dramBound=%d dram=%d",
			ws, r.WallCycles(), r.Sim.DRAMBoundCycles(), r.Sim.DRAMFetches(),
			rl.WallCycles(), rl.Sim.DRAMBoundCycles(), rl.Sim.DRAMFetches())
		t.Logf("ws=%d cp qps=%.3g lh qps=%.3g", ws, r.ThroughputQPS(), rl.ThroughputQPS())
	}
}
