package simhash

import (
	"fmt"

	"cphash/internal/cachesim"
	"cphash/internal/partition"
	"cphash/internal/topology"
	"cphash/internal/workload"
)

// lockCSCycles is the queueing-model estimate of one critical section's
// duration: the accesses inside it (several contended misses on shared
// data) plus compute — about the measured per-op cost minus the lock
// acquire itself. Each same-round acquisition of the same partition lock
// beyond the first waits this long per predecessor — a deterministic
// stand-in for spinning. This is the mechanism behind the paper's
// observation that LOCKHASH collapses when the distinct-key count
// approaches the partition count (Figure 5's left edge).
const lockCSCycles = 2000

// LockConfig configures a simulated LOCKHASH run.
type LockConfig struct {
	// Machine is the simulated topology (default: the paper's machine).
	Machine topology.Machine
	// Latency overrides the latency model (zero value: DefaultLatency).
	Latency *cachesim.LatencyModel
	// Threads lists the hardware threads issuing operations. The paper
	// uses all 160. Empty = all of them.
	Threads []int
	// Partitions is the lock-partition count (default 4,096, the paper's
	// experimentally optimal value).
	Partitions int
	// Spec is the workload (paper §6 defaults via workload.Default).
	Spec workload.Spec
	// CapacityBytes is the table capacity (0 = working set).
	CapacityBytes int
	// LRU selects the eviction policy.
	LRU bool
	// OpsPerThreadPerRound is the per-round batch (default 8).
	OpsPerThreadPerRound int
}

// LockHashSim drives the LOCKHASH model over the cache simulator.
type LockHashSim struct {
	cfg   LockConfig
	sim   *cachesim.Sim
	gens  []*workload.Generator
	parts []*simPartition
	locks []uint64 // lock line address per partition

	// acquiresThisRound[p] models lock queueing within a round.
	acquiresThisRound []int

	ops  int64
	hits int64
}

// NewLockHash builds the simulated table.
func NewLockHash(cfg LockConfig) (*LockHashSim, error) {
	if cfg.Machine.Sockets == 0 {
		cfg.Machine = topology.PaperMachine()
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Threads) == 0 {
		for t := 0; t < cfg.Machine.Threads(); t++ {
			cfg.Threads = append(cfg.Threads, t)
		}
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 4096
	}
	if cfg.OpsPerThreadPerRound == 0 {
		cfg.OpsPerThreadPerRound = 8
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = cfg.Spec.WorkingSetBytes
	}
	lat := cachesim.DefaultLatency()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	s := &LockHashSim{cfg: cfg, sim: cachesim.New(cfg.Machine, lat)}
	// Capacity in value bytes, as the paper counts it (§6).
	capElems := cfg.CapacityBytes / cfg.Spec.ValueSize / cfg.Partitions
	if capElems < 1 {
		capElems = 1
	}
	for i := 0; i < cfg.Partitions; i++ {
		s.parts = append(s.parts, newSimPartition(s.sim, capElems, cfg.LRU, uint64(i)*2654435761+13))
		s.locks = append(s.locks, s.sim.AllocLines(1))
	}
	s.acquiresThisRound = make([]int, cfg.Partitions)
	for i := range cfg.Threads {
		spec := cfg.Spec
		spec.Seed = cfg.Spec.Seed + uint64(i)*0x9e3779b9 + 101
		g, err := workload.NewGenerator(spec)
		if err != nil {
			return nil, err
		}
		s.gens = append(s.gens, g)
	}
	return s, nil
}

// MustLockHash is NewLockHash that panics on error.
func MustLockHash(cfg LockConfig) *LockHashSim {
	s, err := NewLockHash(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *LockHashSim) partOf(key uint64) int {
	return int(partition.Mix64(key) >> 32 % uint64(len(s.parts)))
}

// Round simulates one batch round: every thread performs its batch of
// operations directly on the locked partitions.
func (s *LockHashSim) Round() {
	batch := s.cfg.OpsPerThreadPerRound
	for ti, t := range s.cfg.Threads {
		for i := 0; i < batch; i++ {
			kind, key := s.gens[ti].Next()
			p := s.partOf(key)
			part := s.parts[p]

			// Spinlock acquire: one write (atomic exchange) on the lock
			// line, plus deterministic queueing against same-round
			// acquirers of the same lock.
			s.sim.Access(t, s.locks[p], true, TagLock)
			if n := s.acquiresThisRound[p]; n > 0 {
				s.sim.Idle(t, int64(n)*lockCSCycles, TagLock)
			}
			s.acquiresThisRound[p]++

			switch kind {
			case workload.Lookup:
				e := part.lookup(t, key, TagTraverse, TagTraverse)
				s.ops++
				if e != nil {
					s.hits++
					// The client reads the value itself (no data row in
					// the paper's LOCKHASH breakdown; it folds into
					// traversal).
					s.sim.Access(t, e.valueAdr, false, TagTraverse)
				}
			case workload.Insert:
				e := part.insert(t, key, TagInsert, TagInsert)
				s.ops++
				if e != nil {
					s.sim.Access(t, e.valueAdr, true, TagInsert)
				}
			}
			s.sim.Idle(t, lockCSCompute, TagTraverse)
			// Unlock: a store to the line we now hold modified (hit).
			s.sim.Access(t, s.locks[p], true, TagLock)
		}
	}
	for i := range s.acquiresThisRound {
		s.acquiresThisRound[i] = 0
	}
	s.sim.EndRound(int64(len(s.cfg.Threads)) * int64(batch))
}

// Preload fills the table to steady-state occupancy without lock or
// message traffic; partition lines are touched by a rotating subset of the
// client threads, approximating LOCKHASH's steady state in which shared
// structures are scattered across all caches.
func (s *LockHashSim) Preload() {
	n := s.cfg.Spec.NumKeys()
	for i := 0; i < n; i++ {
		key := workload.KeyOfIndex(uint64(i))
		p := s.partOf(key)
		t := s.cfg.Threads[i%len(s.cfg.Threads)]
		e := s.parts[p].preloadInsert(key)
		s.sim.Access(t, s.parts[p].bucketLine(key), true, TagInsert)
		s.sim.Access(t, e.headerAdr, true, TagInsert)
	}
	s.sim.EndRound(int64(n))
	s.sim.ResetStats()
}

// Run executes warm-up rounds (discarded) then measured rounds.
func (s *LockHashSim) Run(warmRounds, rounds int) Result {
	for i := 0; i < warmRounds; i++ {
		s.Round()
	}
	s.sim.ResetStats()
	s.ops, s.hits = 0, 0
	for i := 0; i < rounds; i++ {
		s.Round()
	}
	return Result{
		Name:          "lockhash",
		Sim:           s.sim,
		Machine:       s.cfg.Machine,
		Ops:           s.ops,
		Hits:          s.hits,
		ClientThreads: append([]int(nil), s.cfg.Threads...),
	}
}

// Elements returns the total resident element count (for tests).
func (s *LockHashSim) Elements() int {
	n := 0
	for _, p := range s.parts {
		n += p.Len()
	}
	return n
}

// String describes the configuration.
func (s *LockHashSim) String() string {
	return fmt.Sprintf("lockhash-sim: %d threads, %d partitions, ws=%d, cap=%d",
		len(s.cfg.Threads), len(s.parts), s.cfg.Spec.WorkingSetBytes, s.cfg.CapacityBytes)
}
