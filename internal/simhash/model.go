// Package simhash models CPHASH and LOCKHASH as memory-access traces over
// the cachesim machine. This is the reproduction vehicle for the paper's
// hardware-counter experiments (Figures 6, 7, 11, 12 and the simulated
// throughput sweeps): the real Go implementation cannot pin goroutines to
// the cores of an 80-core machine we do not have, but the *cache-line
// movement* of both designs is a structural property of their access
// patterns, which these models express faithfully:
//
//   - a partition owns a metadata line (LRU head, allocator state), a
//     bucket-pointer array (8 pointers per line), one header line per
//     element, and a value heap (values packed 8-per-line for the 8-byte
//     microbenchmark values, as a real size-class allocator would);
//   - LOCKHASH adds one lock line per partition; every operation acquires
//     it, walks the bucket chain, updates LRU links, and (for inserts)
//     allocates/evicts — all from the *requesting* thread's cache;
//   - CPHASH sends 16-byte request messages (4 per ring line) and 8-byte
//     replies (8 per line) over simulated SPSC rings with write/read index
//     lines, and the *server* thread performs the partition accesses, so
//     partition state stays in the server's cache and only ring lines and
//     value lines move.
//
// Both models drive the identical simPartition code, mirroring how the real
// implementations share internal/partition (paper §5).
package simhash

import (
	"cphash/internal/cachesim"
	"cphash/internal/partition"
)

// Tags for per-function miss breakdowns (Figure 7 rows).
const (
	// LOCKHASH rows.
	TagLock     cachesim.Tag = "spinlock acquire"
	TagTraverse cachesim.Tag = "hash table traversal"
	TagInsert   cachesim.Tag = "hash table insert"
	TagData     cachesim.Tag = "access data"

	// CPHASH client rows.
	TagSend     cachesim.Tag = "send messages"
	TagRecvResp cachesim.Tag = "receive responses"

	// CPHASH server rows.
	TagRecv     cachesim.Tag = "receive messages"
	TagSendResp cachesim.Tag = "send responses"
	TagExec     cachesim.Tag = "execute message"
)

// Compute-cost constants (cycles) for work that is not a memory access.
// They are calibrated once against Figure 6 (see EXPERIMENTS.md): the paper
// measures 336 cycles/message of server handling and 1,126 cycles/op on the
// client including waiting.
const (
	clientOpCompute  = 60  // generate op, format message, bookkeeping
	serverMsgCompute = 90  // decode, hash, compare keys, list updates
	lockCSCompute    = 120 // LOCKHASH critical-section bookkeeping
)

// simElement tracks the simulated addresses backing one stored element.
type simElement struct {
	key       uint64
	headerAdr uint64
	valueAdr  uint64 // 8-byte slot in the value heap
	valueLen  int
	// LRU links (indices into part.elems by key are avoided; plain
	// pointers keep it O(1)).
	prev, next *simElement
}

// simPartition is the address-level model of one partition store.
type simPartition struct {
	sim  *cachesim.Sim
	meta uint64 // metadata line: LRU head/tail, allocator freelist head

	bucketBase uint64
	nbuckets   uint64

	elems map[uint64]*simElement

	// LRU list (head = MRU). Nil under random eviction.
	head, tail *simElement
	lruOn      bool

	// capacity accounting, in elements (the microbenchmark's fixed 8-byte
	// values make byte capacity a pure element count).
	capElems int

	// freelists of recyclable simulated addresses.
	freeHeaders []uint64
	freeValues  []uint64

	// rng state for random eviction.
	rng uint64
	// keys in insertion order for O(1) random choice (swap-remove).
	keyList []uint64
	keyPos  map[uint64]int

	// evictions counts total evictions (for sanity checks).
	evictions int64
}

// newSimPartition models a partition with room for capElems 8-byte values.
func newSimPartition(sim *cachesim.Sim, capElems int, lru bool, seed uint64) *simPartition {
	if capElems < 1 {
		capElems = 1
	}
	nb := uint64(1)
	for nb < uint64(capElems) {
		nb <<= 1
	}
	p := &simPartition{
		sim:        sim,
		meta:       sim.AllocLines(1),
		bucketBase: sim.Alloc(int(nb) * 8),
		nbuckets:   nb,
		elems:      make(map[uint64]*simElement),
		lruOn:      lru,
		capElems:   capElems,
		rng:        seed | 1,
		keyPos:     map[uint64]int{},
	}
	return p
}

func (p *simPartition) bucketLine(key uint64) uint64 {
	b := partition.Mix64(key) & (p.nbuckets - 1)
	return p.bucketBase + (b/8)*cachesim.LineSize
}

// allocElement reserves simulated addresses for a new element. Value slots
// are carved 8 to a line from per-partition value-heap lines, as a real
// size-class allocator would pack the microbenchmark's 8-byte values.
func (p *simPartition) allocElement(key uint64, size int) *simElement {
	e := &simElement{key: key, valueLen: size}
	if n := len(p.freeHeaders); n > 0 {
		e.headerAdr = p.freeHeaders[n-1]
		p.freeHeaders = p.freeHeaders[:n-1]
	} else {
		e.headerAdr = p.sim.AllocLines(1)
	}
	if len(p.freeValues) == 0 {
		line := p.sim.AllocLines(1)
		for s := 7; s >= 0; s-- {
			p.freeValues = append(p.freeValues, line+uint64(s*8))
		}
	}
	n := len(p.freeValues)
	e.valueAdr = p.freeValues[n-1]
	p.freeValues = p.freeValues[:n-1]
	return e
}

func (p *simPartition) freeElement(e *simElement) {
	p.freeHeaders = append(p.freeHeaders, e.headerAdr)
	p.freeValues = append(p.freeValues, e.valueAdr)
}

// --- LRU maintenance (access-free helpers; callers charge the accesses) ---

func (p *simPartition) lruPush(e *simElement) {
	if !p.lruOn {
		return
	}
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

func (p *simPartition) lruRemove(e *simElement) {
	if !p.lruOn {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else if p.head == e {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if p.tail == e {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (p *simPartition) trackKey(key uint64) {
	p.keyPos[key] = len(p.keyList)
	p.keyList = append(p.keyList, key)
}

func (p *simPartition) untrackKey(key uint64) {
	i, ok := p.keyPos[key]
	if !ok {
		return
	}
	last := len(p.keyList) - 1
	p.keyList[i] = p.keyList[last]
	p.keyPos[p.keyList[i]] = i
	p.keyList = p.keyList[:last]
	delete(p.keyPos, key)
}

func (p *simPartition) randomKey() (uint64, bool) {
	if len(p.keyList) == 0 {
		return 0, false
	}
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return p.keyList[x%uint64(len(p.keyList))], true
}

// lookup performs the partition side of a lookup as thread t, charging
// accesses under the given tags. It returns the element on hit.
//
// Access pattern: read the bucket-pointer line; read the header of each
// chained element until the key matches (chains average ~1 element in the
// paper's configuration); on a hit under LRU, write the element header
// (link update), the old MRU's header, and the metadata line (head
// pointer).
func (p *simPartition) lookup(t int, key uint64, tagTraverse, tagLRU cachesim.Tag) *simElement {
	p.sim.Access(t, p.bucketLine(key), false, tagTraverse)
	e := p.elems[key]
	if e != nil {
		p.sim.Access(t, e.headerAdr, false, tagTraverse)
	}
	if e == nil {
		return nil
	}
	if p.lruOn && p.head != e {
		p.sim.Access(t, e.headerAdr, true, tagLRU)
		p.sim.Access(t, p.meta, true, tagLRU)
		p.lruRemove(e)
		p.lruPush(e)
	}
	return e
}

// preloadInsert inserts without charging any accesses; used to reach the
// steady-state occupancy before measurement (callers then warm caches with
// real rounds).
func (p *simPartition) preloadInsert(key uint64) *simElement {
	if old := p.elems[key]; old != nil {
		p.lruRemove(old)
		p.untrackKey(key)
		delete(p.elems, key)
		p.freeElement(old)
	}
	for len(p.elems) >= p.capElems {
		victim := p.tail
		if victim == nil {
			if k, ok := p.randomKey(); ok {
				victim = p.elems[k]
			}
		}
		if victim == nil {
			break
		}
		p.lruRemove(victim)
		p.untrackKey(victim.key)
		delete(p.elems, victim.key)
		p.freeElement(victim)
	}
	e := p.allocElement(key, 8)
	p.lruPush(e)
	p.trackKey(key)
	p.elems[key] = e
	return e
}

// insert performs the partition side of an insert as thread t: duplicate
// removal, eviction to capacity, allocation, linking. Returns the new
// element; the *value write is not charged here* — in CPHASH the client
// performs it, in LOCKHASH the same thread does (callers charge it).
func (p *simPartition) insert(t int, key uint64, tagIns, tagLRU cachesim.Tag) *simElement {
	p.sim.Access(t, p.bucketLine(key), false, tagIns)
	if old := p.elems[key]; old != nil {
		// Unlink duplicate: header write + bucket write + LRU unlink.
		p.sim.Access(t, old.headerAdr, true, tagIns)
		p.sim.Access(t, p.bucketLine(key), true, tagIns)
		if p.lruOn {
			p.sim.Access(t, p.meta, true, tagLRU)
		}
		p.lruRemove(old)
		p.untrackKey(key)
		delete(p.elems, key)
		p.freeElement(old)
	}
	for len(p.elems) >= p.capElems {
		var victim *simElement
		if p.lruOn {
			p.sim.Access(t, p.meta, false, tagLRU) // read tail pointer
			victim = p.tail
		} else {
			k, ok := p.randomKey()
			if !ok {
				break
			}
			p.sim.Access(t, p.bucketLine(k), false, tagIns)
			victim = p.elems[k]
		}
		if victim == nil {
			break
		}
		p.evictions++
		p.sim.Access(t, victim.headerAdr, true, tagIns)
		p.sim.Access(t, p.bucketLine(victim.key), true, tagIns)
		if p.lruOn {
			p.sim.Access(t, p.meta, true, tagLRU)
		}
		p.lruRemove(victim)
		p.untrackKey(victim.key)
		delete(p.elems, victim.key)
		p.freeElement(victim)
	}
	e := p.allocElement(key, 8)
	// Allocator state + new header + bucket link + LRU head update.
	p.sim.Access(t, p.meta, true, tagIns)
	p.sim.Access(t, e.headerAdr, true, tagIns)
	p.sim.Access(t, p.bucketLine(key), true, tagIns)
	if p.lruOn {
		p.sim.Access(t, p.meta, true, tagLRU)
	}
	p.lruPush(e)
	p.trackKey(key)
	p.elems[key] = e
	return e
}

// Len returns the number of resident elements.
func (p *simPartition) Len() int { return len(p.elems) }

// simRing models one direction of an SPSC ring: a circular array of
// message lines plus a write-index line and a read-index line, with the
// paper's per-cache-line publication protocol.
type simRing struct {
	sim         *cachesim.Sim
	base        uint64
	capMsgs     int
	msgsPerLine int
	writeIdx    uint64
	readIdx     uint64
	produced    int
	consumed    int
}

func newSimRing(sim *cachesim.Sim, capMsgs, msgsPerLine int) *simRing {
	lines := capMsgs / msgsPerLine
	if lines < 1 {
		lines = 1
	}
	return &simRing{
		sim:         sim,
		base:        sim.AllocLines(lines),
		capMsgs:     capMsgs,
		msgsPerLine: msgsPerLine,
		writeIdx:    sim.AllocLines(1),
		readIdx:     sim.AllocLines(1),
	}
}

func (r *simRing) slotLine(i int) uint64 {
	lines := r.capMsgs / r.msgsPerLine
	return r.base + uint64((i/r.msgsPerLine)%lines)*cachesim.LineSize
}

// produce charges the accesses for appending one message as thread t:
// write the slot's line; on filling a line, publish the write index; check
// the read index once per line (occupancy check).
func (r *simRing) produce(t int, tag cachesim.Tag) {
	r.sim.Access(t, r.slotLine(r.produced), true, tag)
	r.produced++
	if r.produced%r.msgsPerLine == 0 {
		r.sim.Access(t, r.writeIdx, true, tag)
		r.sim.Access(t, r.readIdx, false, tag)
	}
}

// flush publishes a partial line (end of batch).
func (r *simRing) flush(t int, tag cachesim.Tag) {
	if r.produced%r.msgsPerLine != 0 {
		r.sim.Access(t, r.writeIdx, true, tag)
	}
}

// consume charges the accesses for removing one message as thread t: read
// the slot's line; per drained line, update the read index; per batch the
// caller charges one write-index read via consumeBatchStart.
func (r *simRing) consume(t int, tag cachesim.Tag) {
	r.sim.Access(t, r.slotLine(r.consumed), false, tag)
	r.consumed++
	if r.consumed%r.msgsPerLine == 0 {
		r.sim.Access(t, r.readIdx, true, tag)
	}
}

// consumeBatchStart charges the write-index probe that begins a drain.
func (r *simRing) consumeBatchStart(t int, tag cachesim.Tag) {
	r.sim.Access(t, r.writeIdx, false, tag)
}

// pending returns the number of produced-but-unconsumed messages.
func (r *simRing) pending() int { return r.produced - r.consumed }
