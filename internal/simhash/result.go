package simhash

import (
	"fmt"
	"strings"

	"cphash/internal/cachesim"
	"cphash/internal/topology"
)

// Result summarizes a simulated run. Per-thread counters stay inside Sim;
// the helpers here aggregate them the way the paper's tables do.
type Result struct {
	Name          string
	Sim           *cachesim.Sim
	Machine       topology.Machine
	Ops           int64
	Hits          int64
	ClientThreads []int
	ServerThreads []int
}

// PerOp holds Figure 6-style per-operation numbers for one thread group.
type PerOp struct {
	Cycles float64
	L2Miss float64
	L3Miss float64
}

// ClientPerOp returns the client-side per-operation averages.
func (r Result) ClientPerOp() PerOp {
	return r.perOp(r.ClientThreads)
}

// ServerPerOp returns the server-side per-operation averages (zero for
// LOCKHASH, which has no servers).
func (r Result) ServerPerOp() PerOp {
	if len(r.ServerThreads) == 0 {
		return PerOp{}
	}
	return r.perOp(r.ServerThreads)
}

func (r Result) perOp(threads []int) PerOp {
	if r.Ops == 0 {
		return PerOp{}
	}
	tot := r.Sim.AggregateTotal(threads)
	return PerOp{
		Cycles: float64(tot.Cycles) / float64(r.Ops),
		L2Miss: float64(tot.L2Miss) / float64(r.Ops),
		L3Miss: float64(tot.L3Miss) / float64(r.Ops),
	}
}

// TagPerOp returns the per-operation miss counts of one tag over a thread
// group — one row of Figure 7.
func (r Result) TagPerOp(threads []int, tag cachesim.Tag) PerOp {
	if r.Ops == 0 {
		return PerOp{}
	}
	st := r.Sim.AggregateTag(threads, tag)
	return PerOp{
		Cycles: float64(st.Cycles) / float64(r.Ops),
		L2Miss: float64(st.L2Miss) / float64(r.Ops),
		L3Miss: float64(st.L3Miss) / float64(r.Ops),
	}
}

// WallCycles estimates the run's duration in cycles: the busiest thread is
// the critical path (clients and servers run concurrently), unless the
// run's DRAM traffic exceeds what the memory controllers can stream in
// that time — then bandwidth is the wall, which is what makes both designs
// converge at huge working sets (Figure 5's right edge).
func (r Result) WallCycles() int64 {
	var max int64
	for _, t := range r.ClientThreads {
		if c := r.Sim.ThreadCycles(t); c > max {
			max = c
		}
	}
	for _, t := range r.ServerThreads {
		if c := r.Sim.ThreadCycles(t); c > max {
			max = c
		}
	}
	if dram := r.Sim.DRAMBoundCycles(); dram > max {
		max = dram
	}
	return max
}

// ThroughputQPS converts the run to queries/second at the machine's clock.
func (r Result) ThroughputQPS() float64 {
	w := r.WallCycles()
	if w == 0 {
		return 0
	}
	return float64(r.Ops) * float64(r.Machine.ClockHz) / float64(w)
}

// PerThreadQPS is ThroughputQPS divided over all participating hardware
// threads — the y-axis of Figure 11.
func (r Result) PerThreadQPS() float64 {
	n := len(r.ClientThreads) + len(r.ServerThreads)
	if n == 0 {
		return 0
	}
	return r.ThroughputQPS() / float64(n)
}

// HitRate returns the lookup hit fraction (diagnostic).
func (r Result) HitRate() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Ops)
}

// BreakdownTable renders the Figure 7-style per-function table for a thread
// group.
func (r Result) BreakdownTable(group string, threads []int, tags []cachesim.Tag) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", group, "L2 miss/op", "L3 miss/op", "cycles/op")
	var totL2, totL3, totCy float64
	for _, tag := range tags {
		p := r.TagPerOp(threads, tag)
		if p.Cycles == 0 && p.L2Miss == 0 && p.L3Miss == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-22s %10.2f %10.2f %10.0f\n", tag, p.L2Miss, p.L3Miss, p.Cycles)
		totL2 += p.L2Miss
		totL3 += p.L3Miss
		totCy += p.Cycles
	}
	fmt.Fprintf(&b, "  %-22s %10.2f %10.2f %10.0f\n", "total", totL2, totL3, totCy)
	return b.String()
}
