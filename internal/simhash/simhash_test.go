package simhash

import (
	"testing"

	"cphash/internal/cachesim"
	"cphash/internal/topology"
	"cphash/internal/workload"
)

// fig6Pair runs the paper's §6.2 configuration (1 MB working set, 1 MB
// capacity, 30% inserts, LRU) on the simulated paper machine.
func fig6Pair(t testing.TB) (Result, Result) {
	t.Helper()
	cp := MustCPHash(CPConfig{Spec: workload.Default(1 << 20), LRU: true})
	cp.Preload()
	rcp := cp.Run(4, 8)
	lh := MustLockHash(LockConfig{Spec: workload.Default(1 << 20), LRU: true})
	lh.Preload()
	rlh := lh.Run(20, 40)
	return rcp, rlh
}

// TestFig6Shape pins the simulated Figure 6 numbers to the paper's within
// generous tolerance bands. If a model change moves these, EXPERIMENTS.md
// must be re-generated.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fig6 takes a few seconds")
	}
	rcp, rlh := fig6Pair(t)

	cpc := rcp.ClientPerOp()
	cps := rcp.ServerPerOp()
	lhc := rlh.ClientPerOp()

	within := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.2f, want within [%.2f, %.2f]", name, got, lo, hi)
		}
	}
	// Paper: client 1,126 cycles, 1.0 L2 / 1.9 L3 misses.
	within("cphash client cycles/op", cpc.Cycles, 700, 1600)
	within("cphash client L3/op", cpc.L3Miss, 1.2, 2.6)
	// Paper: server 672 cycles, 2.5 L2 / 1.2 L3.
	within("cphash server cycles/op", cps.Cycles, 450, 1000)
	within("cphash server L3/op", cps.L3Miss, 0.7, 1.7)
	// Paper: lockhash 3,664 cycles, 2.4 L2 / 4.6 L3.
	within("lockhash cycles/op", lhc.Cycles, 2500, 5000)
	within("lockhash L3/op", lhc.L3Miss, 3.2, 6.0)

	// Headline: CPHASH total misses below LOCKHASH's; ~1.5 fewer L3.
	if cpTotal, lhTotal := cpc.L3Miss+cps.L3Miss, lhc.L3Miss; lhTotal-cpTotal < 0.5 {
		t.Errorf("L3 miss gap = %.2f (cp %.2f vs lh %.2f), want ≥ 0.5", lhTotal-cpTotal, cpTotal, lhTotal)
	}
	// Headline: 1.6×–2× throughput win (we accept 1.3–2.6).
	ratio := rcp.ThroughputQPS() / rlh.ThroughputQPS()
	within("throughput ratio", ratio, 1.3, 2.6)

	// Hit rates must agree between designs (same workload).
	if d := rcp.HitRate() - rlh.HitRate(); d > 0.1 || d < -0.1 {
		t.Errorf("hit rates diverge: cp %.2f vs lh %.2f", rcp.HitRate(), rlh.HitRate())
	}
}

// TestFig7Breakdown checks the per-function structure: LOCKHASH spends its
// misses mostly on traversal; CPHASH's client misses are mostly messaging
// and data; CPHASH's server executes out of its local cache (~no L3
// misses on execute).
func TestFig7Breakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fig7 takes a few seconds")
	}
	rcp, rlh := fig6Pair(t)

	exec := rcp.TagPerOp(rcp.ServerThreads, TagExec)
	if exec.L3Miss > 0.3 {
		t.Errorf("cphash server execute L3/op = %.2f; partition data should be cache-resident", exec.L3Miss)
	}
	send := rcp.TagPerOp(rcp.ClientThreads, TagSend)
	recv := rcp.TagPerOp(rcp.ClientThreads, TagRecvResp)
	// Batching: two messages sent per op must cost ≪ 2 line transfers.
	if send.L3Miss+send.L2Miss > 1.6 {
		t.Errorf("client send misses/op = %.2f; batching not effective", send.L3Miss+send.L2Miss)
	}
	if recv.L3Miss+recv.L2Miss > 1.0 {
		t.Errorf("client recv misses/op = %.2f; reply packing not effective", recv.L3Miss+recv.L2Miss)
	}

	trav := rlh.TagPerOp(rlh.ClientThreads, TagTraverse)
	lock := rlh.TagPerOp(rlh.ClientThreads, TagLock)
	ins := rlh.TagPerOp(rlh.ClientThreads, TagInsert)
	total := rlh.ClientPerOp()
	if trav.L3Miss < lock.L3Miss || trav.L3Miss < ins.L3Miss {
		t.Errorf("traversal (%.2f) must dominate lockhash L3 misses (lock %.2f, insert %.2f)",
			trav.L3Miss, lock.L3Miss, ins.L3Miss)
	}
	if sum := trav.L3Miss + lock.L3Miss + ins.L3Miss; sum < total.L3Miss*0.95 {
		t.Errorf("breakdown rows sum to %.2f of %.2f total", sum, total.L3Miss)
	}
	// Paper: spinlock acquire ≈ 0.1 L2 + 0.9 L3 (one transfer per op).
	if lock.L3Miss+lock.L2Miss > 1.5 {
		t.Errorf("lock acquire misses/op = %.2f, want ≈ 1", lock.L3Miss+lock.L2Miss)
	}
}

// TestFig11SocketScaling: per-thread throughput of CPHASH must hold up (or
// improve) past one socket while LOCKHASH's degrades, the paper's Figure 11
// crossover.
func TestFig11SocketScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("socket sweep takes several seconds")
	}
	perThread := func(sockets int) (cp, lh float64) {
		m := topology.PaperMachine()
		m.Sockets = sockets
		spec := workload.Default(1 << 20)
		c := MustCPHash(CPConfig{Machine: m, Spec: spec, LRU: true})
		c.Preload()
		rc := c.Run(3, 6)
		l := MustLockHash(LockConfig{Machine: m, Spec: spec, LRU: true})
		l.Preload()
		rl := l.Run(10, 20)
		return rc.PerThreadQPS(), rl.ThroughputQPS() / float64(len(rl.ClientThreads))
	}
	cp1, lh1 := perThread(1)
	cp2, lh2 := perThread(2)
	cp4, lh4 := perThread(4)
	cp8, lh8 := perThread(8)
	t.Logf("per-thread qps: 1s cp=%.3g lh=%.3g; 2s cp=%.3g lh=%.3g; 4s cp=%.3g lh=%.3g; 8s cp=%.3g lh=%.3g",
		cp1, lh1, cp2, lh2, cp4, lh4, cp8, lh8)
	_ = lh1 // the 1-socket LOCKHASH point is a documented model artifact
	// (lock queueing over-penalizes 20 threads on one socket); assertions
	// use the 2..8-socket range where the model tracks the paper.

	// CPHASH per-thread throughput declines past one socket (the paper's
	// own curve declines ~2.8× from 20 to 160 threads; ours ~3.6×).
	if cp2 > cp1 {
		t.Errorf("cphash has no single-socket advantage: %.3g → %.3g", cp1, cp2)
	}
	// Per-thread curves decline monotonically over 2→4→8 sockets.
	if !(cp2 >= cp4 && cp4 >= cp8) || !(lh2 >= lh4 && lh4 >= lh8) {
		t.Errorf("per-thread curves not monotone: cp %.3g/%.3g/%.3g lh %.3g/%.3g/%.3g",
			cp2, cp4, cp8, lh2, lh4, lh8)
	}
	// CPHASH total throughput keeps growing with sockets (near-linear
	// early, flattening late — the paper's "scales near-linearly").
	tot1, tot2, tot4, tot8 := cp1*20, cp2*40, cp4*80, cp8*160
	if !(tot1 < tot2 && tot2 < tot4 && tot4 < tot8) {
		t.Errorf("cphash total throughput not increasing: %.3g %.3g %.3g %.3g", tot1, tot2, tot4, tot8)
	}
	if tot8 < tot1*2.0 {
		t.Errorf("cphash total grew only %.2f× from 1 to 8 sockets", tot8/tot1)
	}
	// CPHASH wins clearly at every multi-socket point, with the gap at 8
	// sockets at least 1.5× (paper: 1.63× at 160 threads).
	if cp2 < lh2 || cp4 < lh4 {
		t.Errorf("cphash behind lockhash mid-range: 2s %.3g vs %.3g, 4s %.3g vs %.3g", cp2, lh2, cp4, lh4)
	}
	if cp8 < lh8*1.5 {
		t.Errorf("cphash (%.3g) not ≥1.5× lockhash (%.3g) at 8 sockets", cp8, lh8)
	}
}

// TestFig12Configurations: 160 threads on 80 cores beats 80 threads on 80
// cores for CPHASH (it exploits SMT), and 80 threads on 40 cores (fewer
// sockets) beats 80 threads on 80 cores for both designs.
func TestFig12Configurations(t *testing.T) {
	if testing.Short() {
		t.Skip("configuration sweep takes several seconds")
	}
	spec := workload.Default(1 << 20)
	run := func(m topology.Machine, clients, servers []int) float64 {
		c := MustCPHash(CPConfig{Machine: m, Spec: spec, LRU: true, ClientThreads: clients, ServerThreads: servers})
		c.Preload()
		return c.Run(3, 6).ThroughputQPS()
	}
	full := topology.PaperMachine()

	// 160 threads on 80 cores: client on sibling 0, server on sibling 1.
	cl160, sv160 := PaperThreads(full)
	tput160x80 := run(full, cl160, sv160)

	// 80 threads on 80 cores: one thread per core — half the cores run
	// clients, half run servers, spread across all 8 sockets.
	var cl80, sv80 []int
	for c := 0; c < full.Cores(); c++ {
		tid := full.ThreadID(c/10, c%10, 0)
		if c%2 == 0 {
			cl80 = append(cl80, tid)
		} else {
			sv80 = append(sv80, tid)
		}
	}
	tput80x80 := run(full, cl80, sv80)

	// 80 threads on 40 cores: both hyperthreads of the cores of 4 sockets.
	half := full
	half.Sockets = 4
	cl40, sv40 := PaperThreads(half)
	tput80x40 := run(half, cl40, sv40)

	t.Logf("fig12: 160t/80c=%.3g 80t/80c=%.3g 80t/40c=%.3g", tput160x80, tput80x80, tput80x40)
	if tput160x80 <= tput80x80 {
		t.Errorf("SMT gave no gain: 160t/80c %.3g ≤ 80t/80c %.3g", tput160x80, tput80x80)
	}
	if tput80x40 <= tput80x80 {
		t.Errorf("fewer sockets gave no gain: 80t/40c %.3g ≤ 80t/80c %.3g", tput80x40, tput80x80)
	}
}

// TestRandomEvictionNarrowsGap (Figure 8): with random eviction LOCKHASH
// loses its LRU-update misses, so CPHASH's advantage shrinks but remains.
func TestRandomEvictionNarrowsGap(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction comparison takes several seconds")
	}
	ratioFor := func(lru bool) float64 {
		spec := workload.Default(4 << 20)
		c := MustCPHash(CPConfig{Spec: spec, LRU: lru})
		c.Preload()
		rc := c.Run(3, 6)
		l := MustLockHash(LockConfig{Spec: spec, LRU: lru})
		l.Preload()
		rl := l.Run(10, 20)
		return rc.ThroughputQPS() / rl.ThroughputQPS()
	}
	lruRatio := ratioFor(true)
	randRatio := ratioFor(false)
	t.Logf("fig8: ratio lru=%.2f random=%.2f", lruRatio, randRatio)
	if randRatio >= lruRatio {
		t.Errorf("random-eviction ratio (%.2f) should be below LRU ratio (%.2f)", randRatio, lruRatio)
	}
	if randRatio < 1.05 {
		t.Errorf("random-eviction ratio %.2f; CPHASH should still win (paper: 1.45×)", randRatio)
	}
}

// TestDeterministicRuns: identical configs produce identical results.
func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, float64) {
		c := MustCPHash(CPConfig{Spec: workload.Default(256 << 10), LRU: true, OpsPerClientPerRound: 64})
		c.Preload()
		r := c.Run(2, 3)
		return r.Ops, r.ThroughputQPS()
	}
	ops1, q1 := run()
	ops2, q2 := run()
	if ops1 != ops2 || q1 != q2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", ops1, q1, ops2, q2)
	}
}

// TestPreloadReachesOccupancy: after preload, the table holds min(keys,
// capacity) elements and lookups mostly hit.
func TestPreloadReachesOccupancy(t *testing.T) {
	spec := workload.Default(256 << 10) // 32768 keys
	c := MustCPHash(CPConfig{Spec: spec, LRU: true, OpsPerClientPerRound: 64})
	c.Preload()
	if got, want := c.Elements(), spec.NumKeys(); got < want*95/100 {
		t.Fatalf("elements after preload = %d, want ≈ %d", got, want)
	}
	r := c.Run(1, 3)
	if r.HitRate() < 0.6 { // 70% lookups × ~always-hit
		t.Fatalf("hit rate after preload = %.2f, want ≥ 0.6", r.HitRate())
	}
}

// TestCapacityBelowWorkingSetEvicts (Figure 9 mechanics): capacity at half
// the working set forces misses and evictions.
func TestCapacityBelowWorkingSetEvicts(t *testing.T) {
	spec := workload.Default(256 << 10)
	c := MustCPHash(CPConfig{Spec: spec, CapacityBytes: 128 << 10, LRU: true, OpsPerClientPerRound: 64})
	c.Preload()
	if got, limit := c.Elements(), (128<<10)/8; got > limit {
		t.Fatalf("elements = %d exceed capacity %d", got, limit)
	}
	r := c.Run(1, 3)
	if r.HitRate() > 0.55 {
		t.Fatalf("hit rate %.2f too high for half-capacity table", r.HitRate())
	}
}

// TestLockHashSmallWorkingSetCollapse (Figure 5 left edge): when distinct
// keys number fewer than partitions, LOCKHASH suffers lock contention and
// falls far behind CPHASH.
func TestLockHashSmallWorkingSetCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep takes a few seconds")
	}
	spec := workload.Default(2 << 10) // 256 keys ≪ 4,096 partitions
	c := MustCPHash(CPConfig{Spec: spec, LRU: true})
	c.Preload()
	rc := c.Run(3, 6)
	l := MustLockHash(LockConfig{Spec: spec, LRU: true})
	l.Preload()
	rl := l.Run(10, 20)
	ratio := rc.ThroughputQPS() / rl.ThroughputQPS()
	t.Logf("small-ws ratio = %.2f", ratio)
	if ratio < 1.5 {
		t.Errorf("ratio %.2f at tiny working set; lock queueing should widen the gap at the left edge of Figure 5", ratio)
	}
}

// TestBreakdownTableRendering covers the report formatter.
func TestBreakdownTableRendering(t *testing.T) {
	c := MustCPHash(CPConfig{Spec: workload.Default(64 << 10), OpsPerClientPerRound: 16})
	c.Preload()
	r := c.Run(1, 2)
	out := r.BreakdownTable("client", r.ClientThreads, []cachesim.Tag{TagSend, TagRecvResp, TagData})
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatalf("bad table: %q", out)
	}
	// Zero-ops result renders an empty table without dividing by zero.
	empty := Result{Name: "x", Sim: c.sim, Machine: c.cfg.Machine}
	if got := empty.ClientPerOp(); got != (PerOp{}) {
		t.Fatalf("zero-op PerOp = %+v", got)
	}
	if empty.ThroughputQPS() != 0 {
		t.Fatal("zero-op throughput must be 0")
	}
}
