// Package sizeparse parses human-readable byte sizes ("64MiB", "100KB",
// "4096") for the command-line tools.
package sizeparse

import (
	"fmt"
	"strconv"
	"strings"
)

// suffixes in match order (longest first so "MiB" wins over "M" and "B").
var suffixes = []struct {
	name string
	mult int
}{
	{"GiB", 1 << 30}, {"GB", 1 << 30},
	{"MiB", 1 << 20}, {"MB", 1 << 20},
	{"KiB", 1 << 10}, {"KB", 1 << 10},
	{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10},
	{"B", 1},
}

// Parse converts a size string to bytes. Accepted forms: a bare integer
// (bytes) or an integer with one of the suffixes B, K/KB/KiB, M/MB/MiB,
// G/GB/GiB (all binary multiples, as conventional for memory sizes).
// Suffixes match case-insensitively ("64kib", "1gb" and "16MIB" all
// work), since they arrive from command-line flags (-capacity,
// -maxsegment) typed by humans.
func Parse(s string) (int, error) {
	orig := s
	s = strings.TrimSpace(s)
	mult := 1
	for _, suf := range suffixes {
		if hasSuffixFold(s, suf.name) {
			s = s[:len(s)-len(suf.name)]
			mult = suf.mult
			break
		}
	}
	s = strings.TrimSpace(s)
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sizeparse: bad size %q", orig)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("sizeparse: size %q overflows", orig)
	}
	return n * mult, nil
}

// hasSuffixFold is strings.HasSuffix under ASCII case folding (the
// suffix alphabet is plain ASCII, so EqualFold suffices).
func hasSuffixFold(s, suffix string) bool {
	return len(s) >= len(suffix) && strings.EqualFold(s[len(s)-len(suffix):], suffix)
}

// MustParse is Parse that panics on error, for constant call sites.
func MustParse(s string) int {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}
