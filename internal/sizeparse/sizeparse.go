// Package sizeparse parses human-readable byte sizes ("64MiB", "100KB",
// "4096") for the command-line tools.
package sizeparse

import (
	"fmt"
	"strconv"
	"strings"
)

// suffixes in match order (longest first so "MiB" wins over "M" and "B").
var suffixes = []struct {
	name string
	mult int
}{
	{"GiB", 1 << 30}, {"GB", 1 << 30},
	{"MiB", 1 << 20}, {"MB", 1 << 20},
	{"KiB", 1 << 10}, {"KB", 1 << 10},
	{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10},
	{"B", 1},
}

// Parse converts a size string to bytes. Accepted forms: a bare integer
// (bytes) or an integer with one of the suffixes B, K/KB/KiB, M/MB/MiB,
// G/GB/GiB (all binary multiples, as conventional for memory sizes).
func Parse(s string) (int, error) {
	orig := s
	s = strings.TrimSpace(s)
	mult := 1
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf.name) {
			s = strings.TrimSuffix(s, suf.name)
			mult = suf.mult
			break
		}
	}
	s = strings.TrimSpace(s)
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sizeparse: bad size %q", orig)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("sizeparse: size %q overflows", orig)
	}
	return n * mult, nil
}
