package sizeparse

import "testing"

func TestParse(t *testing.T) {
	good := map[string]int{
		"0":      0,
		"4096":   4096,
		"1B":     1,
		"100KB":  100 << 10,
		"100KiB": 100 << 10,
		"64K":    64 << 10,
		"1MiB":   1 << 20,
		"256MB":  256 << 20,
		"8M":     8 << 20,
		"2GiB":   2 << 30,
		"1G":     1 << 30,
		" 7MiB ": 7 << 20,
		"12 MiB": 12 << 20,
		// Suffixes fold case: command-line flags (-capacity,
		// -maxsegment, cpbench -bufsize) accept what humans type.
		"64kib":  64 << 10,
		"64kb":   64 << 10,
		"64k":    64 << 10,
		"16mib":  16 << 20,
		"1gb":    1 << 30,
		"2g":     2 << 30,
		"16MIB":  16 << 20,
		"512b":   512,
		"3 gib ": 3 << 30,
	}
	for in, want := range good {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	bad := []string{"", "abc", "-1", "-5MB", "1.5MB", "MB", "10TB10", "64 k b", "kib", "12x"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestMustParse(t *testing.T) {
	if got := MustParse("64MiB"); got != 64<<20 {
		t.Fatalf("MustParse(64MiB) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage did not panic")
		}
	}()
	MustParse("not-a-size")
}

func TestParseOverflow(t *testing.T) {
	if _, err := Parse("9999999999999G"); err == nil {
		t.Fatal("overflow accepted")
	}
}
