// Package topology models the machine topology used throughout the CPHash
// reproduction: sockets, cores per socket, hardware threads per core, and
// the cache hierarchy attached to each level.
//
// The paper's evaluation machine is an 8-socket Intel E7-8870 system with
// 10 cores per socket, 2 hardware threads per core (160 hardware threads
// total), a 256 KB L2 cache per core, and a 30 MB L3 cache shared by the 10
// cores of a socket. PaperMachine returns exactly that topology; the cache
// simulator (internal/cachesim) and the benchmark harness consume it so that
// socket-sensitive experiments (Figures 11 and 12) run against the paper's
// geometry regardless of the host machine.
package topology

import (
	"fmt"
	"runtime"
)

// Cache line size, in bytes, assumed everywhere in this repository. Both the
// paper's machines and essentially all contemporary x86/arm64 server parts
// use 64-byte lines.
const CacheLineSize = 64

// Machine describes a multi-socket shared-memory machine.
type Machine struct {
	// Sockets is the number of processor sockets (NUMA nodes).
	Sockets int
	// CoresPerSocket is the number of physical cores on each socket.
	CoresPerSocket int
	// ThreadsPerCore is the number of hardware threads (SMT) per core.
	ThreadsPerCore int

	// L1Size and L2Size are per-core cache sizes in bytes. The paper reports
	// only the 256 KB L2; we model a conventional 32 KB L1D in front of it.
	L1Size int
	L2Size int
	// L3Size is the per-socket shared cache size in bytes.
	L3Size int

	// ClockHz is the nominal core clock; used only to convert cycles to
	// seconds in reports.
	ClockHz int64
}

// PaperMachine returns the 80-core, 160-hardware-thread Intel machine used
// in the paper's evaluation (Section 6).
func PaperMachine() Machine {
	return Machine{
		Sockets:        8,
		CoresPerSocket: 10,
		ThreadsPerCore: 2,
		L1Size:         32 << 10,
		L2Size:         256 << 10,
		L3Size:         30 << 20,
		ClockHz:        2_400_000_000,
	}
}

// AMDMachine returns the 48-core AMD machine the paper mentions as a
// secondary evaluation platform (8 sockets, 6 cores each, no SMT).
func AMDMachine() Machine {
	return Machine{
		Sockets:        8,
		CoresPerSocket: 6,
		ThreadsPerCore: 1,
		L1Size:         64 << 10,
		L2Size:         512 << 10,
		L3Size:         6 << 20,
		ClockHz:        2_000_000_000,
	}
}

// HostMachine returns a best-effort model of the machine the process is
// running on: a single socket holding runtime.NumCPU() single-threaded cores
// with typical cache sizes. Go exposes no portable cache/socket probing, so
// this is intentionally coarse; it is used only when an experiment asks to
// run "at host scale".
func HostMachine() Machine {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return Machine{
		Sockets:        1,
		CoresPerSocket: n,
		ThreadsPerCore: 1,
		L1Size:         32 << 10,
		L2Size:         512 << 10,
		L3Size:         16 << 20,
		ClockHz:        2_400_000_000,
	}
}

// ScaleCaches returns a copy of m with every cache divided by div. The
// simulated Figure 5/8/9 sweeps use a 1/64-scale paper machine so the
// working-set axis (and therefore the simulated element count) shrinks by
// the same factor while the topology and the curve's shape are preserved;
// the crossover points simply move left by the scale factor.
func (m Machine) ScaleCaches(div int) Machine {
	if div < 1 {
		div = 1
	}
	m.L1Size /= div
	m.L2Size /= div
	m.L3Size /= div
	return m
}

// Cores returns the total number of physical cores.
func (m Machine) Cores() int { return m.Sockets * m.CoresPerSocket }

// Threads returns the total number of hardware threads.
func (m Machine) Threads() int { return m.Cores() * m.ThreadsPerCore }

// SocketOf returns the socket that hardware thread t belongs to.
// Hardware threads are numbered socket-major, then core, then SMT sibling:
// thread t lives on core (t / ThreadsPerCore) and socket
// (core / CoresPerSocket).
func (m Machine) SocketOf(t int) int { return m.CoreOf(t) / m.CoresPerSocket }

// CoreOf returns the physical core that hardware thread t belongs to.
func (m Machine) CoreOf(t int) int { return t / m.ThreadsPerCore }

// SiblingOf returns the SMT sibling index (0 or 1 on the paper machine) of
// hardware thread t within its core.
func (m Machine) SiblingOf(t int) int { return t % m.ThreadsPerCore }

// ThreadID returns the hardware-thread number for (socket, core, sibling),
// the inverse of SocketOf/CoreOf/SiblingOf.
func (m Machine) ThreadID(socket, core, sibling int) int {
	return (socket*m.CoresPerSocket+core)*m.ThreadsPerCore + sibling
}

// Validate reports whether the machine description is internally consistent.
func (m Machine) Validate() error {
	switch {
	case m.Sockets <= 0:
		return fmt.Errorf("topology: Sockets must be positive, got %d", m.Sockets)
	case m.CoresPerSocket <= 0:
		return fmt.Errorf("topology: CoresPerSocket must be positive, got %d", m.CoresPerSocket)
	case m.ThreadsPerCore <= 0:
		return fmt.Errorf("topology: ThreadsPerCore must be positive, got %d", m.ThreadsPerCore)
	case m.L1Size < 0 || m.L2Size < 0 || m.L3Size < 0:
		return fmt.Errorf("topology: cache sizes must be non-negative")
	}
	return nil
}

// AggregateCacheBytes returns the total cache capacity reachable by the
// first n hardware threads: the sum of the distinct L2s and L3s they touch.
// The paper uses this quantity (80×256 KB + 8×30 MB ≈ 260 MB) to predict
// where CPHash performance starts to be DRAM-bound (Section 3.1).
func (m Machine) AggregateCacheBytes(n int) int64 {
	if n > m.Threads() {
		n = m.Threads()
	}
	cores := map[int]bool{}
	sockets := map[int]bool{}
	for t := 0; t < n; t++ {
		cores[m.CoreOf(t)] = true
		sockets[m.SocketOf(t)] = true
	}
	return int64(len(cores))*int64(m.L2Size) + int64(len(sockets))*int64(m.L3Size)
}

// String implements fmt.Stringer.
func (m Machine) String() string {
	return fmt.Sprintf("%d sockets × %d cores × %d hw threads (L2 %d KB/core, L3 %d MB/socket)",
		m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.L2Size>>10, m.L3Size>>20)
}
