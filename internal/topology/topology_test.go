package topology

import (
	"testing"
	"testing/quick"
)

func TestPaperMachine(t *testing.T) {
	m := PaperMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 80 {
		t.Errorf("cores = %d, want 80", m.Cores())
	}
	if m.Threads() != 160 {
		t.Errorf("threads = %d, want 160", m.Threads())
	}
	// §3.1: up to 80×256 KB + 8×30 MB ≈ 260 MB of aggregate cache.
	want := int64(80)*(256<<10) + 8*(30<<20)
	if got := m.AggregateCacheBytes(160); got != want {
		t.Errorf("aggregate cache = %d, want %d", got, want)
	}
}

func TestAMDAndHostMachines(t *testing.T) {
	if err := AMDMachine().Validate(); err != nil {
		t.Fatal(err)
	}
	if AMDMachine().Cores() != 48 {
		t.Errorf("AMD cores = %d, want 48", AMDMachine().Cores())
	}
	h := HostMachine()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Threads() < 1 {
		t.Error("host machine has no threads")
	}
}

func TestThreadMapping(t *testing.T) {
	m := PaperMachine()
	// Thread 0 and 1 are SMT siblings on core 0, socket 0.
	if m.CoreOf(0) != 0 || m.CoreOf(1) != 0 || m.SocketOf(1) != 0 {
		t.Error("threads 0/1 should share core 0 on socket 0")
	}
	if m.SiblingOf(0) != 0 || m.SiblingOf(1) != 1 {
		t.Error("sibling indices wrong")
	}
	// Thread 20 starts socket 1 (10 cores × 2 threads per socket).
	if m.SocketOf(20) != 1 {
		t.Errorf("SocketOf(20) = %d, want 1", m.SocketOf(20))
	}
	// Last thread is on the last core of the last socket.
	last := m.Threads() - 1
	if m.SocketOf(last) != 7 || m.CoreOf(last) != 79 {
		t.Errorf("last thread maps to socket %d core %d", m.SocketOf(last), m.CoreOf(last))
	}
}

// TestQuickThreadIDRoundTrip: ThreadID inverts (SocketOf, CoreOf, SiblingOf).
func TestQuickThreadIDRoundTrip(t *testing.T) {
	m := PaperMachine()
	f := func(raw uint16) bool {
		tid := int(raw) % m.Threads()
		sk, core, sib := m.SocketOf(tid), m.CoreOf(tid), m.SiblingOf(tid)
		return m.ThreadID(sk, core%m.CoresPerSocket, sib) == tid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	bad := []Machine{
		{Sockets: 0, CoresPerSocket: 1, ThreadsPerCore: 1},
		{Sockets: 1, CoresPerSocket: 0, ThreadsPerCore: 1},
		{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 0},
		{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1, L2Size: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("machine %d validated", i)
		}
	}
}

func TestAggregateCacheBytesPartial(t *testing.T) {
	m := PaperMachine()
	// Two threads on the same core: one L2, one L3.
	if got, want := m.AggregateCacheBytes(2), int64(256<<10)+int64(30<<20); got != want {
		t.Errorf("2 threads: %d, want %d", got, want)
	}
	// 20 threads = socket 0 fully: 10 L2s + 1 L3.
	if got, want := m.AggregateCacheBytes(20), int64(10)*(256<<10)+int64(30<<20); got != want {
		t.Errorf("20 threads: %d, want %d", got, want)
	}
	// Beyond the machine clamps.
	if m.AggregateCacheBytes(10_000) != m.AggregateCacheBytes(160) {
		t.Error("over-count not clamped")
	}
}

func TestString(t *testing.T) {
	if PaperMachine().String() == "" {
		t.Error("empty String()")
	}
}
