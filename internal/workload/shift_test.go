package workload

import (
	"testing"

	"cphash/internal/partition"
)

// TestShiftingDeterminism: two generators with the same spec produce
// identical streams across shift boundaries.
func TestShiftingDeterminism(t *testing.T) {
	spec := Spec{
		WorkingSetBytes: 64 << 10, ValueSize: 8, InsertRatio: 0.3,
		Dist: Shifting, HotKeys: 32, ShiftEvery: 500, Seed: 7,
	}
	a, b := MustGenerator(spec), MustGenerator(spec)
	for i := 0; i < 5000; i++ {
		ka, oa := a.Next()
		kb, ob := b.Next()
		if ka != kb || oa != ob {
			t.Fatalf("streams diverge at op %d", i)
		}
	}
}

// TestShiftingConcentrationAndShift checks the two defining properties:
// inside one window, ~HotRatio of draws land on HotKeys indices; and
// consecutive windows have (mostly) different hot keys.
func TestShiftingConcentrationAndShift(t *testing.T) {
	const shiftEvery = 4000
	spec := Spec{
		WorkingSetBytes: 256 << 10, ValueSize: 8, InsertRatio: 0,
		Dist: Shifting, HotRatio: 0.9, HotKeys: 64, ShiftEvery: shiftEvery, Seed: 3,
	}
	g := MustGenerator(spec)

	countWindow := func() map[partition.Key]int {
		counts := map[partition.Key]int{}
		for i := 0; i < shiftEvery; i++ {
			_, k := g.Next()
			counts[k]++
		}
		return counts
	}
	hotSet := func(counts map[partition.Key]int) map[partition.Key]bool {
		// The hot window is tiny next to the working set, so any key
		// drawn more than a handful of times is hot.
		hot := map[partition.Key]bool{}
		for k, n := range counts {
			if n >= 10 {
				hot[k] = true
			}
		}
		return hot
	}

	w0 := countWindow()
	w1 := countWindow()
	h0, h1 := hotSet(w0), hotSet(w1)
	if len(h0) < 32 || len(h0) > 96 {
		t.Fatalf("window 0 hot set has %d keys, want ≈64", len(h0))
	}
	var hotDraws int
	for k := range h0 {
		hotDraws += w0[k]
	}
	if frac := float64(hotDraws) / shiftEvery; frac < 0.8 || frac > 0.97 {
		t.Fatalf("hot fraction %.3f, want ≈0.9", frac)
	}
	overlap := 0
	for k := range h1 {
		if h0[k] {
			overlap++
		}
	}
	if overlap > len(h1)/4 {
		t.Fatalf("hot sets barely shifted: %d/%d keys overlap", overlap, len(h1))
	}
}

// TestSizeMixture checks the value-size mixture: key-deterministic
// sizes, weight-proportional distribution, and FillValue/CheckValue
// agreement at the per-key size.
func TestSizeMixture(t *testing.T) {
	spec := Spec{
		WorkingSetBytes: 1 << 20, InsertRatio: 0.3, Seed: 1,
		Sizes: []SizeClass{{Bytes: 16, Weight: 9}, {Bytes: 1024, Weight: 1}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean size 116.8 → ~8978 keys.
	if n := spec.NumKeys(); n < 8000 || n > 10000 {
		t.Fatalf("NumKeys = %d, want ≈8978", n)
	}
	if spec.MaxValueSize() != 1024 {
		t.Fatalf("MaxValueSize = %d", spec.MaxValueSize())
	}

	small, large := 0, 0
	buf := make([]byte, spec.MaxValueSize())
	for i := uint64(0); i < 20000; i++ {
		k := KeyOfIndex(i)
		size := spec.SizeFor(k)
		switch size {
		case 16:
			small++
		case 1024:
			large++
		default:
			t.Fatalf("SizeFor returned %d, not in the mixture", size)
		}
		if size != spec.SizeFor(k) {
			t.Fatal("SizeFor not deterministic")
		}
		v := spec.FillValue(k, buf)
		if len(v) != size {
			t.Fatalf("FillValue wrote %d bytes, SizeFor says %d", len(v), size)
		}
		if !spec.CheckValue(k, v) {
			t.Fatal("CheckValue rejects FillValue output")
		}
		if spec.CheckValue(k, v[:len(v)-1]) {
			t.Fatal("CheckValue accepts truncated value")
		}
	}
	if frac := float64(large) / float64(small+large); frac < 0.07 || frac > 0.13 {
		t.Fatalf("large-value fraction %.3f, want ≈0.10", frac)
	}

	// A generator over the mixture must validate without ValueSize set.
	g := MustGenerator(spec)
	for i := 0; i < 100; i++ {
		g.Next()
	}
}
