// Package workload generates the query streams used by the paper's
// microbenchmark (Section 6): random LOOKUP/INSERT mixes over a working set
// whose size, value size and INSERT ratio are the experiment's knobs.
//
// The paper's benchmark: "The INSERT operation consists of inserting
// key/value pairs such that the key is a random 64-bit number and the value
// is the same as the key (8 bytes)". Keys here are drawn uniformly (or Zipf,
// for the skew extension) from a working set of NumKeys distinct keys and
// scrambled so they spread across partitions; values default to the 8-byte
// little-endian encoding of the key, which also lets readers verify hits.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"cphash/internal/partition"
)

// OpKind is the generated operation type.
type OpKind uint8

const (
	// Lookup is a read.
	Lookup OpKind = iota
	// Insert is a write of the key-derived value.
	Insert
)

// Distribution selects how keys are drawn from the working set.
type Distribution uint8

const (
	// Uniform draws keys uniformly, the paper's configuration.
	Uniform Distribution = iota
	// Zipfian draws keys with Zipf(s≈1.07) popularity, the conventional
	// skewed-cache model; used by the skew ablation, not by paper figures.
	Zipfian
	// Shifting concentrates HotRatio of the traffic on a window of
	// HotKeys contiguous working-set indices that jumps to a fresh
	// window every ShiftEvery operations — the diurnal "yesterday's hot
	// keys go cold" pattern that stresses eviction and partition heat
	// rebalancing in ways a static skew cannot.
	Shifting
)

// SizeClass is one component of a value-size mixture: Weight parts of
// the working set carry Bytes-sized values.
type SizeClass struct {
	Bytes  int
	Weight int
}

// Spec describes a workload. The zero value is not runnable; use Default
// and override.
type Spec struct {
	// WorkingSetBytes is the paper's working-set parameter: the memory
	// needed to store every distinct value (NumKeys × ValueSize).
	WorkingSetBytes int
	// ValueSize is bytes per value (8 in the paper's microbenchmark).
	ValueSize int
	// InsertRatio is the fraction of operations that are inserts (0.3 in
	// most paper experiments).
	InsertRatio float64
	// Dist selects Uniform (paper), Zipfian, or Shifting key popularity.
	Dist Distribution
	// HotRatio, HotKeys and ShiftEvery parameterize the Shifting
	// distribution: HotRatio of operations land on a hot window of
	// HotKeys indices, and the window jumps every ShiftEvery operations.
	// Zero values take defaults (0.9, NumKeys/64 floored at 1, 50000).
	HotRatio   float64
	HotKeys    int
	ShiftEvery int
	// Sizes is an optional value-size mixture. When non-empty it
	// overrides ValueSize: each key's size is drawn deterministically
	// from the key itself, so independent generators and verification
	// code agree on every value without coordination. NumKeys then uses
	// the weighted mean size against WorkingSetBytes.
	Sizes []SizeClass
	// Seed makes the stream deterministic.
	Seed uint64
}

// Default returns the paper's §6.1 microbenchmark settings for a given
// working-set size: 8-byte values, 30% inserts, uniform keys.
func Default(workingSetBytes int) Spec {
	return Spec{
		WorkingSetBytes: workingSetBytes,
		ValueSize:       8,
		InsertRatio:     0.3,
		Dist:            Uniform,
		Seed:            1,
	}
}

// NumKeys returns the number of distinct keys implied by the spec.
func (s Spec) NumKeys() int {
	mean := float64(s.ValueSize)
	if len(s.Sizes) > 0 {
		var sum, weight int
		for _, c := range s.Sizes {
			sum += c.Bytes * c.Weight
			weight += c.Weight
		}
		if weight <= 0 {
			return 0
		}
		mean = float64(sum) / float64(weight)
	}
	if mean <= 0 {
		return 0
	}
	n := int(float64(s.WorkingSetBytes) / mean)
	if n < 1 {
		n = 1
	}
	return n
}

// SizeFor returns the value size for key: ValueSize without a mixture,
// otherwise a weight-proportional pick hashed from the key alone (the
// property verification depends on — a reader reconstructs the size the
// same way the writer chose it).
func (s Spec) SizeFor(key partition.Key) int {
	if len(s.Sizes) == 0 {
		return s.ValueSize
	}
	total := 0
	for _, c := range s.Sizes {
		total += c.Weight
	}
	draw := int(partition.Mix64(uint64(key)^0xa24baed4963ee407) % uint64(total))
	for _, c := range s.Sizes {
		if draw -= c.Weight; draw < 0 {
			return c.Bytes
		}
	}
	return s.Sizes[len(s.Sizes)-1].Bytes
}

// MaxValueSize bounds SizeFor over all keys — the buffer capacity a
// driver must provision.
func (s Spec) MaxValueSize() int {
	if len(s.Sizes) == 0 {
		return s.ValueSize
	}
	max := 0
	for _, c := range s.Sizes {
		if c.Bytes > max {
			max = c.Bytes
		}
	}
	return max
}

// Validate reports whether the spec is runnable.
func (s Spec) Validate() error {
	if s.WorkingSetBytes <= 0 {
		return fmt.Errorf("workload: WorkingSetBytes must be positive")
	}
	if s.ValueSize <= 0 && len(s.Sizes) == 0 {
		return fmt.Errorf("workload: ValueSize must be positive")
	}
	if s.InsertRatio < 0 || s.InsertRatio > 1 {
		return fmt.Errorf("workload: InsertRatio %v outside [0,1]", s.InsertRatio)
	}
	for _, c := range s.Sizes {
		if c.Bytes <= 0 || c.Weight <= 0 {
			return fmt.Errorf("workload: size class %d:%d must have positive bytes and weight", c.Bytes, c.Weight)
		}
	}
	if s.HotRatio < 0 || s.HotRatio > 1 {
		return fmt.Errorf("workload: HotRatio %v outside [0,1]", s.HotRatio)
	}
	if s.HotKeys < 0 || s.ShiftEvery < 0 {
		return fmt.Errorf("workload: HotKeys and ShiftEvery must be non-negative")
	}
	return nil
}

// Generator produces a deterministic operation stream for one client.
// Generators are not safe for concurrent use; give each client its own
// (with distinct seeds) as the paper gives each client thread its own
// query stream.
type Generator struct {
	spec    Spec
	numKeys uint64
	state   uint64 // splitmix64 state
	// insertThreshold in 2^-63 units: op is Insert when draw < threshold.
	insertThreshold uint64
	zipf            *zipf
	// Shifting state: ops counts generated operations; the hot window is
	// [hotBase(ops), +hotKeys) where hotBase jumps every shiftEvery ops.
	ops          uint64
	hotKeys      uint64
	shiftEvery   uint64
	hotThreshold uint64 // in 2^-63 units: draw>>1 < threshold → hot window
}

// NewGenerator builds a generator; the spec must validate.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:            spec,
		numKeys:         uint64(spec.NumKeys()),
		state:           spec.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		insertThreshold: uint64(spec.InsertRatio * (1 << 63)),
	}
	switch spec.Dist {
	case Zipfian:
		g.zipf = newZipf(spec.Seed, 1.07, g.numKeys)
	case Shifting:
		ratio := spec.HotRatio
		if ratio == 0 {
			ratio = 0.9
		}
		g.hotThreshold = uint64(ratio * (1 << 63))
		g.hotKeys = uint64(spec.HotKeys)
		if g.hotKeys == 0 {
			g.hotKeys = g.numKeys / 64
		}
		if g.hotKeys < 1 {
			g.hotKeys = 1
		}
		if g.hotKeys > g.numKeys {
			g.hotKeys = g.numKeys
		}
		g.shiftEvery = uint64(spec.ShiftEvery)
		if g.shiftEvery == 0 {
			g.shiftEvery = 50000
		}
	}
	return g, nil
}

// MustGenerator is NewGenerator that panics on error.
func MustGenerator(spec Spec) *Generator {
	g, err := NewGenerator(spec)
	if err != nil {
		panic(err)
	}
	return g
}

// next64 advances the splitmix64 stream.
func (g *Generator) next64() uint64 {
	g.state += 0x9e3779b97f4a7c15
	return partition.Mix64(g.state)
}

// Next returns the next operation and its key. Keys are stable for a given
// (index, seed): key i of the working set is always Mix64(i)&MaxKey, so
// separate generators and verification code agree on the key universe.
func (g *Generator) Next() (OpKind, partition.Key) {
	draw := g.next64()
	var idx uint64
	switch {
	case g.zipf != nil:
		idx = g.zipf.next()
	case g.spec.Dist == Shifting:
		idx = g.nextShifting()
	default:
		idx = g.next64() % g.numKeys
	}
	key := KeyOfIndex(idx)
	if draw>>1 < g.insertThreshold {
		return Insert, key
	}
	return Lookup, key
}

// nextShifting draws the next Shifting index: with probability HotRatio
// a uniform pick inside the current hot window, otherwise a uniform pick
// over the whole working set. The window is a function of the operation
// counter alone, so replays shift at exactly the same points.
func (g *Generator) nextShifting() uint64 {
	window := g.ops / g.shiftEvery
	g.ops++
	if g.next64()>>1 < g.hotThreshold {
		base := (window * g.hotKeys) % g.numKeys
		return (base + g.next64()%g.hotKeys) % g.numKeys
	}
	return g.next64() % g.numKeys
}

// KeyOfIndex maps working-set index i to its 60-bit key.
func KeyOfIndex(i uint64) partition.Key {
	return partition.Mix64(i) & partition.MaxKey
}

// FillValue writes the verification value for key into dst (little-endian
// key-derived bytes) and returns dst truncated to the key's value size
// (SizeFor). dst must have capacity ≥ MaxValueSize.
func (s Spec) FillValue(key partition.Key, dst []byte) []byte {
	dst = dst[:s.SizeFor(key)]
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(key)^0x5bd1e995)
	for i := range dst {
		dst[i] = word[i&7]
	}
	return dst
}

// CheckValue reports whether a read value matches FillValue for the key.
func (s Spec) CheckValue(key partition.Key, v []byte) bool {
	if len(v) != s.SizeFor(key) {
		return false
	}
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], uint64(key)^0x5bd1e995)
	for i := range v {
		if v[i] != word[i&7] {
			return false
		}
	}
	return true
}

// zipf is a seedable Zipf-distributed index generator over [0, n) with
// exponent q > 1. It is the rejection-inversion method of Hörmann and
// Derflinger — the same algorithm as math/rand.Zipf — re-implemented on a
// splitmix64 stream so workloads replay deterministically across runs.
type zipf struct {
	state        uint64
	imax         float64
	v            float64
	q            float64
	s            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
}

func newZipf(seed uint64, q float64, n uint64) *zipf {
	z := &zipf{
		state: seed ^ 0xd1b54a32d192ed03,
		imax:  float64(n - 1),
		v:     1,
		q:     q,
	}
	z.oneminusQ = 1 - z.q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1)))
	return z
}

func (z *zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

func (z *zipf) nextFloat() float64 {
	z.state += 0x9e3779b97f4a7c15
	return float64(partition.Mix64(z.state)>>11) / (1 << 53)
}

func (z *zipf) next() uint64 {
	var k float64
	for {
		r := z.nextFloat()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k = math.Floor(x + 0.5)
		if k-x <= z.s {
			break
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			break
		}
	}
	return uint64(k)
}
