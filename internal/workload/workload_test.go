package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecNumKeys(t *testing.T) {
	cases := []struct {
		ws, vs, want int
	}{
		{1 << 20, 8, 131072},
		{100 << 10, 8, 12800},
		{8, 8, 1},
		{4, 8, 1}, // degenerate: at least one key
	}
	for _, c := range cases {
		s := Spec{WorkingSetBytes: c.ws, ValueSize: c.vs}
		if got := s.NumKeys(); got != c.want {
			t.Errorf("NumKeys(%d/%d) = %d, want %d", c.ws, c.vs, got, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := Default(1 << 20).Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{WorkingSetBytes: 0, ValueSize: 8},
		{WorkingSetBytes: 1024, ValueSize: 0},
		{WorkingSetBytes: 1024, ValueSize: 8, InsertRatio: -0.1},
		{WorkingSetBytes: 1024, ValueSize: 8, InsertRatio: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	spec := Default(64 << 10)
	g1 := MustGenerator(spec)
	g2 := MustGenerator(spec)
	for i := 0; i < 10000; i++ {
		op1, k1 := g1.Next()
		op2, k2 := g2.Next()
		if op1 != op2 || k1 != k2 {
			t.Fatalf("streams diverge at %d: (%v,%d) vs (%v,%d)", i, op1, k1, op2, k2)
		}
	}
	// A different seed must give a different stream.
	spec.Seed = 2
	g3 := MustGenerator(spec)
	same := 0
	for i := 0; i < 1000; i++ {
		_, k1 := g1.Next()
		_, k3 := g3.Next()
		if k1 == k3 {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical keys", same)
	}
}

func TestInsertRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.3, 0.5, 1} {
		spec := Default(1 << 20)
		spec.InsertRatio = ratio
		g := MustGenerator(spec)
		inserts := 0
		const n = 200000
		for i := 0; i < n; i++ {
			op, _ := g.Next()
			if op == Insert {
				inserts++
			}
		}
		got := float64(inserts) / n
		if math.Abs(got-ratio) > 0.01 {
			t.Errorf("ratio %v: measured %v", ratio, got)
		}
	}
}

func TestKeysWithinWorkingSet(t *testing.T) {
	spec := Default(1 << 10) // 128 keys
	g := MustGenerator(spec)
	valid := map[uint64]bool{}
	for i := uint64(0); i < uint64(spec.NumKeys()); i++ {
		valid[KeyOfIndex(i)] = true
	}
	for i := 0; i < 50000; i++ {
		_, k := g.Next()
		if !valid[k] {
			t.Fatalf("key %d outside the declared working set", k)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	spec := Default(1 << 10) // 128 keys
	g := MustGenerator(spec)
	counts := map[uint64]int{}
	const n = 128 * 1000
	for i := 0; i < n; i++ {
		_, k := g.Next()
		counts[k]++
	}
	if len(counts) != spec.NumKeys() {
		t.Fatalf("only %d/%d keys drawn", len(counts), spec.NumKeys())
	}
	for k, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("key %d drawn %d times, expected ~1000", k, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	spec := Default(1 << 13) // 1024 keys
	spec.Dist = Zipfian
	g := MustGenerator(spec)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		_, k := g.Next()
		counts[k]++
	}
	// The hottest key under Zipf(1.07) must be far above the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := n / spec.NumKeys()
	if max < uniformShare*10 {
		t.Errorf("hottest key %d draws; expected ≥ 10× uniform share %d", max, uniformShare)
	}
}

func TestFillCheckValueRoundTrip(t *testing.T) {
	f := func(key uint64, size uint8) bool {
		s := Spec{WorkingSetBytes: 1 << 20, ValueSize: int(size)%64 + 1, InsertRatio: 0.3}
		buf := make([]byte, 64)
		v := s.FillValue(key, buf)
		if len(v) != s.ValueSize {
			return false
		}
		if !s.CheckValue(key, v) {
			return false
		}
		// A different key must not verify (except for pathological sizes
		// where all bytes collide; with the xor constant that needs equal
		// low bytes — skip keys equal modulo the repeating word).
		if key != key+1 && s.CheckValue(key+1, v) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckValueWrongLength(t *testing.T) {
	s := Default(1 << 10)
	v := s.FillValue(5, make([]byte, 8))
	if s.CheckValue(5, v[:4]) {
		t.Fatal("CheckValue accepted truncated value")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := MustGenerator(Default(64 << 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
