package cphash

// Integration tests for the observability surface: a live /metrics
// endpoint must emit strictly valid Prometheus text exposition, the
// server-side latency histograms and per-slot heat must account for
// exactly the operations driven through the wire, and the per-peer
// replication lag gauges must grow while a follower stalls and reset to
// zero once it resyncs.

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cphash/internal/core"
	"cphash/internal/kvserver"
	"cphash/internal/loadgen"
	"cphash/internal/lockhash"
	"cphash/internal/obs"
	"cphash/internal/partition"
	"cphash/internal/persist"
	"cphash/internal/replica"
	"cphash/internal/workload"
)

// scrapeURL fetches and strictly parses one exposition; any grammar
// error fails the test — the same gate CI applies to a live cpserver.
func scrapeURL(t *testing.T, url string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	s, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	return s
}

func TestObsServerLatencyAndHeatExposition(t *testing.T) {
	table := core.MustNew(core.Config{
		Partitions:    2,
		CapacityBytes: 8 << 20,
		MaxClients:    2,
		Seed:          1,
	})
	defer table.Close()
	srv, err := kvserver.Serve(kvserver.Config{
		Addr:       "127.0.0.1:0",
		Workers:    2,
		NewBackend: kvserver.NewCPHashBackend(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	reg.Register(func(e *obs.Expo) {
		labels := obs.Labels("instance", srv.Addr())
		srv.Collect(e, labels)
		table.Collect(e, labels)
	})
	hs := httptest.NewServer(reg.Handler())
	defer hs.Close()

	before := scrapeURL(t, hs.URL)
	spec := workload.Default(256 << 10)
	spec.Dist = workload.Zipfian
	const perConn = 4000
	res, err := loadgen.Run(loadgen.Config{
		Addrs:      []string{srv.Addr()},
		Conns:      2,
		Pipeline:   32,
		Spec:       spec,
		OpsPerConn: perConn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2*perConn {
		t.Fatalf("loadgen completed %d ops, want %d", res.Ops, 2*perConn)
	}
	d := scrapeURL(t, hs.URL).Sub(before)

	// The delta histogram covers exactly this run's operations.
	if got := d.Sum("cphash_op_latency_ns_count"); got != 2*perConn {
		t.Fatalf("op latency count = %g, want %d", got, 2*perConn)
	}
	p50, ok50 := d.Quantile("cphash_op_latency_ns", 0.5)
	p99, ok99 := d.Quantile("cphash_op_latency_ns", 0.99)
	p999, ok999 := d.Quantile("cphash_op_latency_ns", 0.999)
	if !ok50 || !ok99 || !ok999 {
		t.Fatalf("latency quantiles unavailable: %v %v %v", ok50, ok99, ok999)
	}
	if !(p50 > 0 && p50 <= p99 && p99 <= p999) {
		t.Fatalf("quantiles not ordered: p50=%g p99=%g p999=%g", p50, p99, p999)
	}
	// 488 log-scale buckets top out near 2^61ns; a finite p999 means the
	// samples landed in real buckets, not the overflow.
	if p999 > 1e18 {
		t.Fatalf("p999=%g ns is not a finite bucket edge", p999)
	}

	// Per-slot heat accounts for every table operation of the run.
	if got, want := d.Sum("cphash_slot_ops_total"), d.Sum("cphash_table_lookups_total")+d.Sum("cphash_table_inserts_total")+d.Sum("cphash_table_deletes_total"); got != want {
		t.Fatalf("slot heat ops = %g, table ops = %g", got, want)
	}
	if d.Sum("cphash_slot_ops_total") == 0 {
		t.Fatal("no slot heat recorded")
	}
}

// stallableApplier wraps a follower applier with a gate: while stalled,
// Apply blocks until release is closed, so the primary's tail advances
// ahead of the follower's acked watermark and the lag gauges must show
// it.
type stallableApplier struct {
	inner   replica.Applier
	stall   atomic.Bool
	release chan struct{}
}

func (g *stallableApplier) Apply(op persist.Op, key uint64, expireAt int64, ver uint64, value []byte) error {
	if g.stall.Load() {
		<-g.release
	}
	return g.inner.Apply(op, key, expireAt, ver, value)
}

func (g *stallableApplier) Flush() error { return g.inner.Flush() }

func TestObsReplicationLagGrowsAndResets(t *testing.T) {
	dir := t.TempDir()
	pipe, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncNone, Streams: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	primary, err := lockhash.New(lockhash.Config{
		Partitions:    8,
		CapacityBytes: 8 << 20,
		Sink:          func(i int) partition.ChangeSink { return pipe.Appender(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe.SetSource(persist.LockHashSource(primary))
	if _, err := persist.RestoreLockHash(pipe, primary); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Start(); err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Pipe:      pipe,
		Addr:      "127.0.0.1:0",
		Heartbeat: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	reg := obs.NewRegistry()
	reg.Register(func(e *obs.Expo) {
		src.Collect(e, obs.Labels("instance", "primary"))
	})
	hs := httptest.NewServer(reg.Handler())
	defer hs.Close()

	lagKey := `cphash_replica_lag_records{instance="primary",peer="f1"}`
	syncedKey := `cphash_replica_peer_synced{instance="primary",peer="f1"}`

	waitFor := func(desc string, cond func(*obs.Scrape) bool) *obs.Scrape {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			s := scrapeURL(t, hs.URL)
			if cond(s) {
				return s
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; samples: %v", desc, s.Keys())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	for k := uint64(1); k <= 200; k++ {
		primary.Put(k, []byte("seed-value"))
	}

	ftable := lockhash.MustNew(lockhash.Config{Partitions: 8, CapacityBytes: 8 << 20})
	ga := &stallableApplier{inner: replica.NewLockHashApplier(ftable), release: make(chan struct{})}
	fl, err := replica.StartFollower(replica.FollowerConfig{
		Source:  src.Addr(),
		Name:    "f1",
		Apply:   ga,
		Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	// Synced follower at the tail: lag gauge present and zero.
	waitFor("synced follower with zero lag", func(s *obs.Scrape) bool {
		synced, _ := s.Get(syncedKey)
		lag, ok := s.Get(lagKey)
		return ok && synced == 1 && lag == 0
	})

	// Stall the applier and keep writing: the tail runs ahead of the
	// acked watermark, so the scraped lag must grow, with a wall-clock
	// staleness alongside it.
	ga.stall.Store(true)
	for k := uint64(1000); k < 3000; k++ {
		primary.Put(k, []byte("stalled-value"))
	}
	grown := waitFor("lag to grow while the applier stalls", func(s *obs.Scrape) bool {
		lag, ok := s.Get(lagKey)
		return ok && lag > 0
	})
	if ms, ok := grown.Get(`cphash_replica_lag_ms{instance="primary",peer="f1"}`); !ok || ms < 0 {
		t.Fatalf("lag_ms = %g ok=%v while lagging", ms, ok)
	}

	// Release the gate: the backlog drains and lag falls back to zero.
	ga.stall.Store(false)
	close(ga.release)
	waitFor("lag to reset after the stall", func(s *obs.Scrape) bool {
		lag, ok := s.Get(lagKey)
		return ok && lag == 0
	})

	// Kill the follower: the peer's series persist with peer_up at 0 and
	// the lag gauge counting on from the retained acked watermark — the
	// failure detector's signal, and how dashboards see a dead standby
	// fall behind instead of the series silently vanishing.
	fl.Close()
	upKey := `cphash_replica_peer_up{instance="primary",peer="f1"}`
	waitFor("peer_up to drop to 0 after close", func(s *obs.Scrape) bool {
		up, ok := s.Get(upKey)
		return ok && up == 0
	})
	for k := uint64(5000); k < 5200; k++ {
		primary.Put(k, []byte("post-kill-value"))
	}
	waitFor("retained lag to grow against the dead peer's watermark", func(s *obs.Scrape) bool {
		up, _ := s.Get(upKey)
		lag, ok := s.Get(lagKey)
		return ok && up == 0 && lag > 0
	})

	// Restart under the same name: the resync brings the series back and
	// drives lag to zero again.
	ftable2 := lockhash.MustNew(lockhash.Config{Partitions: 8, CapacityBytes: 8 << 20})
	fl2, err := replica.StartFollower(replica.FollowerConfig{
		Source:  src.Addr(),
		Name:    "f1",
		Apply:   replica.NewLockHashApplier(ftable2),
		Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	waitFor("restarted follower to resync to zero lag", func(s *obs.Scrape) bool {
		up, _ := s.Get(upKey)
		synced, _ := s.Get(syncedKey)
		lag, ok := s.Get(lagKey)
		return ok && up == 1 && synced == 1 && lag == 0
	})
}
