package cphash

import (
	"time"

	"cphash/internal/protocol"
)

// StringTable implements the paper's Section 8.2 extension: arbitrary-size
// keys on top of the fixed 60-bit key space, without modifying the table.
// A string key is hashed to a 60-bit key; the stored value is the key
// string and the caller's value together; Get compares the stored key
// string and treats a mismatch — a 60-bit hash collision — as a miss.
// Because CPHash is a cache, returning "not found" on collision does not
// violate correctness, and with 60-bit hashes collisions are vanishingly
// rare at in-memory scales (the paper's argument verbatim).
//
// The hash and the stored-entry framing are shared with the wire
// protocol's GET_STR/SET_STR/DEL_STR ops (internal/protocol), so entries
// written through a StringTable are readable by a CPSERVER speaking
// protocol version 2 against the same table, and vice versa.
//
// StringTable works over any KV — a CPHASH Client (single-goroutine) or a
// LockedTable (any concurrency).
type StringTable struct {
	kv KV
}

// NewStringTable wraps a KV in the string-key extension.
func NewStringTable(kv KV) *StringTable {
	return &StringTable{kv: kv}
}

// HashString maps a string key to the 60-bit integer key space (FNV-1a).
func HashString(key string) Key {
	return protocol.HashStringKey([]byte(key))
}

// Put stores value under the string key, reporting whether space was found.
func (s *StringTable) Put(key string, value []byte) bool {
	return s.PutTTL(key, value, 0)
}

// PutTTL stores value under the string key with a time-to-live (0 = never
// expires), reporting whether space was found.
func (s *StringTable) PutTTL(key string, value []byte, ttl time.Duration) bool {
	entry := protocol.AppendStringEntry(nil, []byte(key), value)
	return s.kv.PutTTL(HashString(key), entry, ttl)
}

// Get appends the value stored under the string key to dst. A hash
// collision with a different key reports a miss, per the paper's cache
// semantics.
func (s *StringTable) Get(key string, dst []byte) ([]byte, bool) {
	raw, ok := s.kv.Get(HashString(key), nil)
	if !ok {
		return dst, false
	}
	v, ok := protocol.CutStringEntry(raw, []byte(key))
	if !ok {
		return dst, false // 60-bit hash collision: treat as miss
	}
	return append(dst, v...), true
}

// Delete removes the string key, reporting whether an entry existed under
// its hash. In the vanishingly rare event of a 60-bit hash collision this
// removes the colliding entry instead — for a cache that only costs a
// refill, the same argument the paper makes for collision misses.
func (s *StringTable) Delete(key string) bool {
	return s.kv.Delete(HashString(key))
}
