package cphash

import (
	"encoding/binary"
	"hash/fnv"
)

// StringTable implements the paper's Section 8.2 extension: arbitrary-size
// keys on top of the fixed 60-bit key space, without modifying the table.
// A string key is hashed to a 60-bit key; the stored value is the key
// string and the caller's value together; Get compares the stored key
// string and treats a mismatch — a 60-bit hash collision — as a miss.
// Because CPHash is a cache, returning "not found" on collision does not
// violate correctness, and with 60-bit hashes collisions are vanishingly
// rare at in-memory scales (the paper's argument verbatim).
//
// StringTable works over any KV — a CPHASH Client (single-goroutine) or a
// LockedTable (any concurrency).
type StringTable struct {
	kv KV
}

// NewStringTable wraps a KV in the string-key extension.
func NewStringTable(kv KV) *StringTable {
	return &StringTable{kv: kv}
}

// HashString maps a string key to the 60-bit integer key space (FNV-1a).
func HashString(key string) Key {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return KeyOf(h.Sum64())
}

// Put stores value under the string key, reporting whether space was found.
func (s *StringTable) Put(key string, value []byte) bool {
	buf := make([]byte, 4+len(key)+len(value))
	binary.LittleEndian.PutUint32(buf, uint32(len(key)))
	copy(buf[4:], key)
	copy(buf[4+len(key):], value)
	return s.kv.Put(HashString(key), buf)
}

// Get appends the value stored under the string key to dst. A hash
// collision with a different key reports a miss, per the paper's cache
// semantics.
func (s *StringTable) Get(key string, dst []byte) ([]byte, bool) {
	raw, ok := s.kv.Get(HashString(key), nil)
	if !ok || len(raw) < 4 {
		return dst, false
	}
	klen := int(binary.LittleEndian.Uint32(raw))
	if klen < 0 || 4+klen > len(raw) {
		return dst, false
	}
	if string(raw[4:4+klen]) != key {
		return dst, false // 60-bit hash collision: treat as miss
	}
	return append(dst, raw[4+klen:]...), true
}
